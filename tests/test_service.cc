/**
 * @file
 * ExecutorService tests: the long-lived multi-tenant worker pool's
 * admission backpressure, per-job failure isolation, cancellation,
 * deadlines, retry/backoff, and the chaos matrix the PR's acceptance
 * criteria name — several concurrent jobs under armed fault and
 * straggler drills, with per-job task conservation asserted through
 * the VerifyingScheduler's job-aware ledger.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/verifying_scheduler.h"
#include "runtime/executor_service.h"
#include "support/fault.h"
#include "support/straggler.h"
#include "support/topology.h"

namespace hdcps {
namespace {

/** Tree job: every task with data > 0 spawns `fanout` children one
 *  level down; counts processed tasks into `processed`. Total tasks
 *  for depth d: (fanout^(d+1) - 1) / (fanout - 1). */
ProcessFn
treeJob(std::atomic<uint64_t> &processed, uint32_t fanout = 3)
{
    return [&processed, fanout](unsigned, const Task &task,
                                std::vector<Task> &children) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (task.data == 0)
            return;
        for (uint32_t i = 0; i < fanout; ++i) {
            children.push_back(Task{task.priority + 1,
                                    task.node * fanout + i + 1,
                                    task.data - 1});
        }
    };
}

uint64_t
treeSize(uint32_t depth, uint32_t fanout = 3)
{
    uint64_t total = 0, level = 1;
    for (uint32_t d = 0; d <= depth; ++d) {
        total += level;
        level *= fanout;
    }
    return total;
}

/** Self-replenishing job: every task spawns one child until `budget`
 *  is exhausted — long-lived on purpose (cancel/deadline targets). */
ProcessFn
replenishJob(std::atomic<int64_t> &budget,
             std::atomic<uint64_t> &processed, uint64_t sleepUs = 0)
{
    return [&budget, &processed, sleepUs](unsigned, const Task &task,
                                          std::vector<Task> &children) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (sleepUs > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(sleepUs));
        }
        if (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
            children.push_back(
                Task{task.priority + 1, task.node + 1, task.data});
        }
    };
}

TEST(Service, SingleJobCompletes)
{
    MultiQueueScheduler sched(2);
    ServiceOptions options;
    options.numThreads = 2;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "tree";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 4}};
    JobHandle job = svc.submit(std::move(spec));
    ASSERT_TRUE(job.valid());
    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), treeSize(4));
    EXPECT_EQ(job.tasksCompleted(), treeSize(4));
    EXPECT_TRUE(job.error().empty());
    EXPECT_GT(job.latencyMs(), 0.0);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.jobsMeasured, 1u);
    EXPECT_GT(stats.jobLatencyP50Ms, 0.0);
}

TEST(Service, EmptyJobCompletesImmediately)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.process = treeJob(processed);
    // No initial tasks: admitted, adopted, immediately quiescent.
    JobHandle job = svc.submit(std::move(spec));
    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), 0u);
}

TEST(Service, AdmissionOverflowRejectsWithReason)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 1;
    ExecutorService svc(sched, options);

    // Job 1 occupies the only worker until released.
    std::atomic<bool> release{false};
    std::atomic<uint64_t> blockedRuns{0};
    JobSpec blocker;
    blocker.name = "blocker";
    blocker.process = [&release, &blockedRuns](unsigned, const Task &,
                                               std::vector<Task> &) {
        blockedRuns.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    blocker.initial = {Task{0, 1, 0}};
    JobHandle job1 = svc.submit(std::move(blocker));

    // Wait until the worker is inside job 1 (adopted + popped), so
    // job 2 stays queued and fills the capacity-1 admission queue.
    while (blockedRuns.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();

    std::atomic<uint64_t> ignored{0};
    JobSpec queued;
    queued.name = "queued";
    queued.process = treeJob(ignored);
    queued.initial = {Task{0, 2, 0}};
    JobHandle job2 = svc.submit(std::move(queued));
    EXPECT_NE(job2.state(), JobState::Rejected);

    JobSpec overflow;
    overflow.name = "overflow";
    overflow.process = treeJob(ignored);
    overflow.initial = {Task{0, 3, 0}};
    JobHandle job3 = svc.submit(std::move(overflow));
    EXPECT_EQ(job3.state(), JobState::Rejected);
    EXPECT_TRUE(job3.done());
    EXPECT_NE(job3.error().find("admission queue full"),
              std::string::npos);

    release.store(true, std::memory_order_release);
    EXPECT_EQ(job1.wait(), JobState::Completed);
    EXPECT_EQ(job2.wait(), JobState::Completed);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.admitted, 2u);
}

TEST(Service, AdmitFullFaultForcesRejection)
{
    MultiQueueScheduler sched(1);
    // Injection scopes install before the service spawns its workers
    // (the registry contract: arm while no worker is running).
    ScopedFaultInjection faults(7);
    faults->arm(faultsite::SvcAdmitFull, FaultMode::OneShot, 1.0);

    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 64; // plenty of space
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 1, 1}};
    JobHandle rejected = svc.submit(std::move(spec));
    EXPECT_EQ(rejected.state(), JobState::Rejected);
    EXPECT_EQ(faults->fireCount(faultsite::SvcAdmitFull), 1u);

    // The one-shot spent itself: the next submission is admitted.
    JobSpec retry;
    retry.process = treeJob(processed);
    retry.initial = {Task{0, 1, 1}};
    JobHandle ok = svc.submit(std::move(retry));
    EXPECT_EQ(ok.wait(), JobState::Completed);
}

TEST(Service, BlockWhenFullBlocksUntilSpace)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 1;
    options.blockWhenFull = true;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    std::atomic<uint64_t> blockedRuns{0};
    JobSpec blocker;
    blocker.process = [&release, &blockedRuns](unsigned, const Task &,
                                               std::vector<Task> &) {
        blockedRuns.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    blocker.initial = {Task{0, 1, 0}};
    JobHandle job1 = svc.submit(std::move(blocker));
    while (blockedRuns.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();

    std::atomic<uint64_t> processed{0};
    JobSpec filler;
    filler.process = treeJob(processed);
    filler.initial = {Task{0, 2, 0}};
    JobHandle job2 = svc.submit(std::move(filler));

    // Queue is full: this submit must block until job 2 is adopted.
    std::atomic<bool> submitted{false};
    JobHandle job3;
    std::thread submitter([&] {
        JobSpec late;
        late.process = treeJob(processed);
        late.initial = {Task{0, 3, 0}};
        job3 = svc.submit(std::move(late));
        submitted.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(submitted.load(std::memory_order_acquire));

    release.store(true, std::memory_order_release);
    submitter.join();
    EXPECT_NE(job3.state(), JobState::Rejected);
    EXPECT_EQ(job1.wait(), JobState::Completed);
    EXPECT_EQ(job2.wait(), JobState::Completed);
    EXPECT_EQ(job3.wait(), JobState::Completed);
    EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(Service, CancelQueuedJobNeverRuns)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 4;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    std::atomic<uint64_t> blockedRuns{0};
    JobSpec blocker;
    blocker.process = [&release, &blockedRuns](unsigned, const Task &,
                                               std::vector<Task> &) {
        blockedRuns.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    blocker.initial = {Task{0, 1, 0}};
    JobHandle job1 = svc.submit(std::move(blocker));
    while (blockedRuns.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();

    std::atomic<uint64_t> processed{0};
    JobSpec queued;
    queued.process = treeJob(processed);
    queued.initial = {Task{0, 2, 3}};
    JobHandle job2 = svc.submit(std::move(queued));

    EXPECT_TRUE(job2.cancel());
    EXPECT_EQ(job2.state(), JobState::Cancelled);
    EXPECT_FALSE(job2.cancel()); // already terminal
    EXPECT_NE(job2.error().find("cancelled"), std::string::npos);

    release.store(true, std::memory_order_release);
    EXPECT_EQ(job1.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), 0u); // never ran a single task
    EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, CancelRunningJobDrainsWhileCoResidentCompletes)
{
    constexpr unsigned threads = 4;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);
    ServiceOptions options;
    options.numThreads = threads;
    ExecutorService svc(verify, options);

    // Victim: effectively unbounded self-replenishing chains.
    std::atomic<int64_t> victimBudget{1 << 28};
    std::atomic<uint64_t> victimProcessed{0};
    JobSpec victim;
    victim.name = "victim";
    victim.process = replenishJob(victimBudget, victimProcessed);
    for (uint32_t i = 0; i < 8; ++i)
        victim.initial.push_back(Task{i, i, 0});
    JobHandle victimJob = svc.submit(std::move(victim));

    // Co-resident: a finite tree that must finish exactly.
    std::atomic<uint64_t> neighborProcessed{0};
    JobSpec neighbor;
    neighbor.name = "neighbor";
    neighbor.process = treeJob(neighborProcessed);
    neighbor.initial = {Task{0, 0, 6}};
    JobHandle neighborJob = svc.submit(std::move(neighbor));

    // Let the victim make real progress before cancelling mid-flight.
    while (victimProcessed.load(std::memory_order_acquire) < 100)
        std::this_thread::yield();
    EXPECT_TRUE(victimJob.cancel());
    EXPECT_EQ(victimJob.wait(), JobState::Cancelled);
    EXPECT_NE(victimJob.error().find("cancelled"), std::string::npos);

    EXPECT_EQ(neighborJob.wait(), JobState::Completed);
    EXPECT_EQ(neighborProcessed.load(), treeSize(6));

    svc.shutdown();

    // Per-job conservation: the cancelled job drained to exactly zero
    // outstanding tasks; nothing global was lost or duplicated.
    std::string why;
    EXPECT_TRUE(verify.checkJobDrained(victimJob.id(), &why)) << why;
    EXPECT_TRUE(verify.checkJobDrained(neighborJob.id(), &why)) << why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_GT(stats.tasksDrained, 0u);
}

TEST(Service, DeadlineExpiresRunningJob)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler sched(threads);
    ServiceOptions options;
    options.numThreads = threads;
    ExecutorService svc(sched, options);

    // Slow replenisher that cannot finish inside the deadline.
    std::atomic<int64_t> budget{1 << 28};
    std::atomic<uint64_t> processed{0};
    JobSpec slow;
    slow.name = "sluggish";
    slow.process = replenishJob(budget, processed, /*sleepUs=*/500);
    slow.initial = {Task{0, 1, 0}, Task{0, 2, 0}};
    slow.deadlineMs = 40;
    JobHandle job = svc.submit(std::move(slow));

    EXPECT_EQ(job.wait(), JobState::Failed);
    EXPECT_NE(job.error().find("deadline"), std::string::npos);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.deadlineExpired, 1u);
}

TEST(Service, DeadlineExpiresQueuedJob)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 4;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    std::atomic<uint64_t> blockedRuns{0};
    JobSpec blocker;
    blocker.process = [&release, &blockedRuns](unsigned, const Task &,
                                               std::vector<Task> &) {
        blockedRuns.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    blocker.initial = {Task{0, 1, 0}};
    JobHandle job1 = svc.submit(std::move(blocker));
    while (blockedRuns.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();

    std::atomic<uint64_t> processed{0};
    JobSpec starved;
    starved.process = treeJob(processed);
    starved.initial = {Task{0, 2, 2}};
    starved.deadlineMs = 20;
    JobHandle job2 = svc.submit(std::move(starved));

    // The queued job expires while the worker is still pinned.
    EXPECT_EQ(job2.wait(), JobState::Failed);
    EXPECT_NE(job2.error().find("deadline"), std::string::npos);
    EXPECT_EQ(processed.load(), 0u);

    release.store(true, std::memory_order_release);
    EXPECT_EQ(job1.wait(), JobState::Completed);
}

TEST(Service, TransientFailuresRetryThenSucceed)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler sched(threads);
    ServiceOptions options;
    options.numThreads = threads;
    ExecutorService svc(sched, options);

    // Every task fails its first attempt and succeeds on the retry.
    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "flaky";
    spec.process = [&processed](unsigned, const Task &task,
                                std::vector<Task> &children) {
        if (task.attempt == 0)
            throw FaultInjectedError("transient");
        processed.fetch_add(1, std::memory_order_relaxed);
        if (task.data > 0) {
            children.push_back(
                Task{task.priority + 1, task.node * 2, task.data - 1});
            children.push_back(Task{task.priority + 1,
                                    task.node * 2 + 1, task.data - 1});
        }
    };
    spec.initial = {Task{0, 1, 3}};
    spec.retry.maxAttempts = 3;
    spec.retry.backoffBaseUs = 10;
    spec.retry.backoffMaxUs = 100;
    JobHandle job = svc.submit(std::move(spec));

    EXPECT_EQ(job.wait(), JobState::Completed);
    uint64_t expected = treeSize(3, 2);
    EXPECT_EQ(processed.load(), expected);
    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.taskRetries, expected); // one retry per task
    EXPECT_EQ(stats.completed, 1u);
}

TEST(Service, RetriesExhaustedFailTheJob)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    ExecutorService svc(sched, options);

    JobSpec spec;
    spec.name = "doomed";
    spec.process = [](unsigned, const Task &, std::vector<Task> &) {
        throw FaultInjectedError("permanent");
    };
    spec.initial = {Task{0, 1, 0}};
    spec.retry.maxAttempts = 2;
    spec.retry.backoffBaseUs = 10;
    spec.retry.backoffMaxUs = 50;
    JobHandle job = svc.submit(std::move(spec));

    EXPECT_EQ(job.wait(), JobState::Failed);
    EXPECT_NE(job.error().find("after 2 attempt"), std::string::npos);
    EXPECT_NE(job.error().find("permanent"), std::string::npos);
    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.taskRetries, 1u); // first attempt was retried once
}

TEST(Service, JobFailureIsolatesFromCoResidentJobs)
{
    constexpr unsigned threads = 4;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);
    ServiceOptions options;
    options.numThreads = threads;
    ExecutorService svc(verify, options);

    // The failing tenant: wide tree whose tasks all throw eventually.
    JobSpec bad;
    bad.name = "bad-tenant";
    bad.process = [](unsigned, const Task &task,
                     std::vector<Task> &children) {
        if (task.data > 0) {
            for (uint32_t i = 0; i < 4; ++i) {
                children.push_back(Task{task.priority + 1,
                                        task.node * 4 + i,
                                        task.data - 1});
            }
        }
        if (task.data <= 1)
            throw FaultInjectedError("tenant bug");
    };
    bad.initial = {Task{0, 1, 4}};
    JobHandle badJob = svc.submit(std::move(bad));

    std::vector<JobHandle> good;
    std::atomic<uint64_t> goodProcessed{0};
    for (int i = 0; i < 3; ++i) {
        JobSpec spec;
        spec.name = "good-" + std::to_string(i);
        spec.process = treeJob(goodProcessed);
        spec.initial = {Task{0, uint32_t(i), 5}};
        good.push_back(svc.submit(std::move(spec)));
    }

    EXPECT_EQ(badJob.wait(), JobState::Failed);
    EXPECT_NE(badJob.error().find("tenant bug"), std::string::npos);
    for (JobHandle &job : good)
        EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(goodProcessed.load(), 3 * treeSize(5));

    svc.shutdown();
    std::string why;
    EXPECT_TRUE(verify.checkJobDrained(badJob.id(), &why)) << why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;
}

TEST(Service, JobPriorityOrdersAdmission)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 8;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    std::atomic<uint64_t> blockedRuns{0};
    JobSpec blocker;
    blocker.process = [&release, &blockedRuns](unsigned, const Task &,
                                               std::vector<Task> &) {
        blockedRuns.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    blocker.initial = {Task{0, 1, 0}};
    JobHandle job0 = svc.submit(std::move(blocker));
    while (blockedRuns.load(std::memory_order_acquire) == 0)
        std::this_thread::yield();

    // Queue three jobs: low urgency first, then high. Adoption order
    // must follow job priority, not submission order.
    std::vector<unsigned> order;
    std::mutex orderMutex;
    auto ordered = [&order, &orderMutex](unsigned label) {
        return [&order, &orderMutex, label](unsigned, const Task &,
                                            std::vector<Task> &) {
            std::lock_guard<std::mutex> lock(orderMutex);
            order.push_back(label);
        };
    };
    JobSpec low;
    low.process = ordered(3);
    low.priority = 30;
    low.initial = {Task{0, 2, 0}};
    JobSpec mid;
    mid.process = ordered(2);
    mid.priority = 20;
    mid.initial = {Task{0, 3, 0}};
    JobSpec high;
    high.process = ordered(1);
    high.priority = 10;
    high.initial = {Task{0, 4, 0}};
    JobHandle jobLow = svc.submit(std::move(low));
    JobHandle jobMid = svc.submit(std::move(mid));
    JobHandle jobHigh = svc.submit(std::move(high));

    release.store(true, std::memory_order_release);
    EXPECT_EQ(job0.wait(), JobState::Completed);
    EXPECT_EQ(jobLow.wait(), JobState::Completed);
    EXPECT_EQ(jobMid.wait(), JobState::Completed);
    EXPECT_EQ(jobHigh.wait(), JobState::Completed);

    // With one worker, adoption (and hence first processing) follows
    // the admission order: high (10), mid (20), low (30).
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
    EXPECT_EQ(order[2], 3u);
}

TEST(Service, ShutdownRunsAdmittedJobsThenRejects)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler sched(threads);
    ServiceOptions options;
    options.numThreads = threads;
    options.admissionCapacity = 16;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    std::vector<JobHandle> jobs;
    for (int i = 0; i < 8; ++i) {
        JobSpec spec;
        spec.process = treeJob(processed);
        spec.initial = {Task{0, uint32_t(i), 3}};
        jobs.push_back(svc.submit(std::move(spec)));
    }
    svc.shutdown();

    for (JobHandle &job : jobs)
        EXPECT_EQ(job.state(), JobState::Completed);
    EXPECT_EQ(processed.load(), 8 * treeSize(3));

    JobSpec late;
    late.process = treeJob(processed);
    late.initial = {Task{0, 99, 1}};
    JobHandle rejected = svc.submit(std::move(late));
    EXPECT_EQ(rejected.state(), JobState::Rejected);
    EXPECT_NE(rejected.error().find("shutting down"),
              std::string::npos);
}

/**
 * The acceptance-criteria chaos matrix: >= 4 concurrent jobs over a
 * VerifyingScheduler under armed fault and straggler drills —
 * cancelled and failing jobs drain with exact per-job conservation,
 * co-resident jobs complete correctly, admission overflow rejects new
 * jobs without losing accepted ones, and a deadline-expired job fails
 * with a deadline error.
 */
TEST(Service, ChaosMatrixFourJobsUnderFaultsAndStragglers)
{
    constexpr unsigned threads = 4;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);

    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    MetricsRegistry metrics(threads, metricsConfig);

    ScopedFaultInjection faults(42);
    // Sparse process-throws (survivable via retry), spurious pop
    // failures, and a widened cancel/complete race window.
    faults->arm(faultsite::SvcJobFail, FaultMode::EveryNth, 97);
    faults->arm(faultsite::ExecPopFail, FaultMode::EveryNth, 53);
    faults->arm(faultsite::SvcCancelRace, FaultMode::Delay, 200000);
    // Guarantee at least one admission rejection in the burst below:
    // the 10th submit (burst job 5) hits a forced-full one-shot.
    // Natural capacity-3 overflow may add more.
    faults->arm(faultsite::SvcAdmitFull, FaultMode::OneShot, 10);

    ScopedStragglerInjection stragglers(threads, 42);
    stragglers->add({/*worker=*/1, /*atCheck=*/50, /*pauseMs=*/30});
    stragglers->add({/*worker=*/3, /*atCheck=*/200, /*pauseMs=*/20});

    // The service starts its workers immediately, so both injection
    // scopes must be installed before this line or the worker threads
    // race the injector installation itself.
    ServiceOptions options;
    options.numThreads = threads;
    options.admissionCapacity = 3;
    options.seed = 42;
    options.metrics = &metrics;
    ExecutorService svc(verify, options);

    RetryPolicy survivable;
    survivable.maxAttempts = 6; // outlives nth:97 process-throws
    survivable.backoffBaseUs = 5;
    survivable.backoffMaxUs = 50;

    // The four headline jobs must all be admitted: with a capacity-3
    // queue a tight submit loop can outrun adoption, so wait for each
    // to leave Queued before submitting the next.
    auto awaitAdoption = [](const JobHandle &job) {
        ASSERT_NE(job.state(), JobState::Rejected) << job.name();
        while (job.state() == JobState::Queued)
            std::this_thread::yield();
    };

    // Job 1 + 2: honest tenants whose exact task counts we verify.
    std::atomic<uint64_t> honest1{0}, honest2{0};
    JobSpec spec1;
    spec1.name = "honest-1";
    spec1.process = treeJob(honest1);
    spec1.initial = {Task{0, 0, 6}};
    spec1.retry = survivable;
    JobHandle job1 = svc.submit(std::move(spec1));
    awaitAdoption(job1);

    JobSpec spec2;
    spec2.name = "honest-2";
    spec2.process = treeJob(honest2, /*fanout=*/2);
    spec2.initial = {Task{0, 0, 8}};
    spec2.retry = survivable;
    JobHandle job2 = svc.submit(std::move(spec2));
    awaitAdoption(job2);

    // Job 3: cancel target — long-lived replenisher.
    std::atomic<int64_t> victimBudget{1 << 28};
    std::atomic<uint64_t> victimProcessed{0};
    JobSpec spec3;
    spec3.name = "victim";
    spec3.process = replenishJob(victimBudget, victimProcessed);
    for (uint32_t i = 0; i < 8; ++i)
        spec3.initial.push_back(Task{i, 100 + i, 0});
    spec3.retry = survivable;
    JobHandle job3 = svc.submit(std::move(spec3));
    awaitAdoption(job3);

    // Job 4: deadline casualty — slow replenisher, 50 ms budget.
    std::atomic<int64_t> slowBudget{1 << 28};
    std::atomic<uint64_t> slowProcessed{0};
    JobSpec spec4;
    spec4.name = "deadline";
    spec4.process = replenishJob(slowBudget, slowProcessed,
                                 /*sleepUs=*/300);
    spec4.initial = {Task{0, 200, 0}, Task{0, 201, 0}};
    spec4.deadlineMs = 50;
    spec4.retry = survivable;
    JobHandle job4 = svc.submit(std::move(spec4));
    awaitAdoption(job4);

    // Overflow burst: tiny jobs thrown at a capacity-3 queue while
    // the workers are saturated; some must be rejected, and every
    // *admitted* one must still complete.
    std::atomic<uint64_t> burstProcessed{0};
    std::vector<JobHandle> burst;
    for (int i = 0; i < 24; ++i) {
        JobSpec spec;
        spec.name = "burst-" + std::to_string(i);
        spec.process = treeJob(burstProcessed, /*fanout=*/2);
        spec.initial = {Task{0, uint32_t(300 + i), 2}};
        spec.retry = survivable;
        burst.push_back(svc.submit(std::move(spec)));
        // Quarter-throttled: fast enough to overflow the capacity-3
        // queue, slow enough that adoption admits a share too.
        if (i % 4 == 3) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
        }
    }

    // Cancel the victim mid-flight.
    while (victimProcessed.load(std::memory_order_acquire) < 50)
        std::this_thread::yield();
    job3.cancel();

    EXPECT_EQ(job1.wait(), JobState::Completed);
    EXPECT_EQ(job2.wait(), JobState::Completed);
    EXPECT_EQ(job3.wait(), JobState::Cancelled);
    EXPECT_EQ(job4.wait(), JobState::Failed);
    EXPECT_NE(job4.error().find("deadline"), std::string::npos);

    EXPECT_EQ(honest1.load(), treeSize(6));
    EXPECT_EQ(honest2.load(), treeSize(8, 2));

    uint64_t burstCompleted = 0, burstRejected = 0;
    uint64_t burstTasksExpected = 0;
    for (JobHandle &job : burst) {
        JobState s = job.wait();
        if (s == JobState::Rejected) {
            ++burstRejected;
            continue;
        }
        EXPECT_EQ(s, JobState::Completed) << job.name();
        ++burstCompleted;
        burstTasksExpected += treeSize(2, 2);
    }
    EXPECT_EQ(burstCompleted + burstRejected, burst.size());
    EXPECT_GE(burstRejected, 1u); // the forced-full one-shot at least
    EXPECT_GT(burstCompleted, 0u);
    EXPECT_EQ(burstProcessed.load(), burstTasksExpected);

    svc.shutdown();

    // Per-job conservation for the killed tenants, global
    // conservation for everyone, and a clean single-writer audit.
    std::string why;
    EXPECT_TRUE(verify.checkJobDrained(job3.id(), &why)) << why;
    EXPECT_TRUE(verify.checkJobDrained(job4.id(), &why)) << why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;
    EXPECT_EQ(metrics.writerViolations(), 0u);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.deadlineExpired, 1u);
    EXPECT_EQ(stats.completed, 2u + burstCompleted);
    EXPECT_EQ(stats.rejected, burstRejected);
    EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
    EXPECT_GE(stats.jobLatencyP99Ms, stats.jobLatencyP50Ms);
    EXPECT_GT(stats.jobsMeasured, 0u);
}

/**
 * Supervision: the svc.worker.die drill kills exactly one worker
 * mid-run. The supervisor must observe the exit latch, reclaim the
 * dead slot's backlog, and spawn a replacement — every job completes
 * with exact task counts, the conservation ledger balances, and
 * WorkerRestarts matches the injected death count deterministically.
 */
TEST(Service, SupervisorHealsDeadWorkerAndConservesTasks)
{
    constexpr unsigned threads = 4;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);

    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    MetricsRegistry metrics(threads, metricsConfig);

    ScopedFaultInjection faults(11);
    faults->arm(faultsite::SvcWorkerDie, FaultMode::OneShot, 400);

    ServiceOptions options;
    options.numThreads = threads;
    options.metrics = &metrics;
    options.supervisor.enabled = true;
    options.supervisor.probeIntervalMs = 1;
    // Death detection rides the exit latch, not staleness: generous
    // thresholds so scheduler hiccups on loaded hosts can't fake a
    // wedge and skew the exact restart count below.
    options.supervisor.suspectAfterMs = 500;
    options.supervisor.wedgedAfterMs = 2000;
    options.supervisor.maxRestarts = 4;
    ExecutorService svc(verify, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "tree";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 9}};
    JobHandle job = svc.submit(std::move(spec));
    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), treeSize(9));

    // The drill fires exactly once; wait for the heal to land.
    while (svc.stats().workerRestarts < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Pool capacity is restored: a follow-up job completes too, and
    // every slot reads Healthy again.
    std::atomic<uint64_t> after{0};
    JobSpec spec2;
    spec2.name = "after-heal";
    spec2.process = treeJob(after);
    spec2.initial = {Task{0, 1, 6}};
    JobHandle job2 = svc.submit(std::move(spec2));
    EXPECT_EQ(job2.wait(), JobState::Completed);
    EXPECT_EQ(after.load(), treeSize(6));
    for (unsigned tid = 0; tid < threads; ++tid)
        EXPECT_EQ(svc.workerHealth(tid), WorkerHealth::Healthy) << tid;

    svc.shutdown();

    std::string why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;
    EXPECT_EQ(metrics.writerViolations(), 0u);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(faults->fireCount(faultsite::SvcWorkerDie), 1u);
    EXPECT_EQ(stats.workerRestarts, 1u);
    EXPECT_EQ(stats.crashesDetected, 1u);
    EXPECT_FALSE(stats.escalated);
    EXPECT_EQ(stats.completed, 2u);
}

/**
 * Supervision x topology: a healed worker must rejoin its slot's node
 * group. Node membership is slot state (assigned at construction), so
 * the replacement thread inherits it by taking over the slot — what
 * this test pins down is the announce path: every worker thread,
 * original or replacement, reports through onWorkerStart (forwarded
 * by the VerifyingScheduler wrapper), so the scheduler can re-pin the
 * new thread to the slot's node. Synthetic topologies carry no CPU
 * lists, so the test is deterministic on any host.
 */
TEST(Service, HealedWorkerRejoinsItsNodeGroup)
{
    constexpr unsigned threads = 4;
    HdCpsConfig config = HdCpsScheduler::configSw();
    config.topology = Topology::synthetic(2, 2);
    HdCpsScheduler inner(threads, config);
    VerifyingScheduler verify(inner);

    ScopedFaultInjection faults(17);
    faults->arm(faultsite::SvcWorkerDie, FaultMode::OneShot, 400);

    ServiceOptions options;
    options.numThreads = threads;
    options.supervisor.enabled = true;
    options.supervisor.probeIntervalMs = 1;
    options.supervisor.suspectAfterMs = 500;
    options.supervisor.wedgedAfterMs = 2000;
    options.supervisor.maxRestarts = 4;
    ExecutorService svc(verify, options);

    // Node assignment is fixed at construction and never moves.
    for (unsigned tid = 0; tid < threads; ++tid) {
        EXPECT_EQ(inner.nodeOfWorker(tid),
                  config.topology.nodeOfWorker(tid, threads));
    }

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "tree";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 9}};
    JobHandle job = svc.submit(std::move(spec));
    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), treeSize(9));

    while (svc.stats().workerRestarts < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // A post-heal job completes with the pool back at full capacity.
    std::atomic<uint64_t> after{0};
    JobSpec spec2;
    spec2.name = "after-heal";
    spec2.process = treeJob(after);
    spec2.initial = {Task{0, 1, 6}};
    JobHandle job2 = svc.submit(std::move(spec2));
    EXPECT_EQ(job2.wait(), JobState::Completed);
    EXPECT_EQ(after.load(), treeSize(6));

    svc.shutdown();

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.workerRestarts, 1u);
    // Every slot announced itself at startup, and the healed slot
    // announced once more when its replacement thread took over —
    // the bind that re-pins it to the slot's (unchanged) node.
    uint64_t totalBinds = 0;
    for (unsigned tid = 0; tid < threads; ++tid) {
        EXPECT_GE(inner.workerBinds(tid), 1u) << tid;
        totalBinds += inner.workerBinds(tid);
        EXPECT_EQ(inner.nodeOfWorker(tid),
                  config.topology.nodeOfWorker(tid, threads))
            << "node membership must survive the heal";
    }
    EXPECT_EQ(totalBinds, uint64_t(threads) + stats.workerRestarts);

    std::string why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;
}

/**
 * Supervision: the svc.worker.wedge drill stalls one worker past the
 * wedged threshold without heartbeats. The supervisor must demote it
 * through Suspect -> Wedged, quarantine + reclaim, supersede the
 * zombie, and restart the slot once the zombie drains out — with the
 * job still completing exactly.
 */
TEST(Service, SupervisorRecoversWedgedWorker)
{
    constexpr unsigned threads = 4;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);

    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    MetricsRegistry metrics(threads, metricsConfig);

    ScopedFaultInjection faults(13);
    faults->arm(faultsite::SvcWorkerWedge, FaultMode::OneShot, 500);

    ServiceOptions options;
    options.numThreads = threads;
    options.metrics = &metrics;
    options.supervisor.enabled = true;
    options.supervisor.probeIntervalMs = 1;
    options.supervisor.suspectAfterMs = 20;
    options.supervisor.wedgedAfterMs = 100; // drill stalls 3x this
    options.supervisor.maxRestarts = 8;
    ExecutorService svc(verify, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "tree";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 9}};
    JobHandle job = svc.submit(std::move(spec));
    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), treeSize(9));

    // The wedge resolves through supersession: zombie exits, slot is
    // restarted. (>= because a loaded host may add organic wedges.)
    while (svc.stats().workerRestarts < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    svc.shutdown();

    std::string why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;
    EXPECT_EQ(metrics.writerViolations(), 0u);

    ServiceStats stats = svc.stats();
    EXPECT_EQ(faults->fireCount(faultsite::SvcWorkerWedge), 1u);
    EXPECT_GE(stats.wedgesDetected, 1u);
    EXPECT_GE(stats.workerRestarts, 1u);
    // Healthy -> Suspect -> Wedged -> Dead -> Healthy: >= 4 flips.
    EXPECT_GE(stats.healthTransitions, 4u);
    EXPECT_FALSE(stats.escalated);

    // The forced reclamation recorded its latency series.
    MetricsSnapshot snap = metrics.snapshot();
    bool sawReclaimSeries = false;
    for (const auto &series : snap.series) {
        if (series.name == "reclaim_latency_ms")
            sawReclaimSeries = series.totalRecorded >= 1;
    }
    EXPECT_TRUE(sawReclaimSeries);
}

/**
 * Poison quarantine: tasks the svc.task.poison drill marks fail on
 * every attempt; with deadLetterOnExhaustion set they are diverted to
 * the job's dead-letter queue and the job still *completes*, with
 * PoisonedTasks matching the injected count exactly.
 */
TEST(Service, PoisonedTasksAreDeadLetteredNotFatal)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);

    ScopedFaultInjection faults(17);
    faults->arm(faultsite::SvcTaskPoison, FaultMode::EveryNth, 50);

    ServiceOptions options;
    options.numThreads = threads;
    ExecutorService svc(verify, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "poisoned-tree";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 7}};
    spec.retry.maxAttempts = 3;
    spec.retry.backoffBaseUs = 5;
    spec.retry.backoffMaxUs = 50;
    spec.retry.deadLetterOnExhaustion = true;
    JobHandle job = svc.submit(std::move(spec));

    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_TRUE(job.error().empty());

    uint64_t injected = faults->fireCount(faultsite::SvcTaskPoison);
    ASSERT_GE(injected, 1u);
    EXPECT_EQ(job.poisonedTasks(), injected);
    std::vector<Task> dead = job.deadLetters();
    ASSERT_EQ(dead.size(), injected);
    for (const Task &t : dead) {
        EXPECT_EQ(t.attempt, spec.retry.maxAttempts - 1);
        EXPECT_EQ(t.job, job.id());
    }
    // A poisoned task never runs its ProcessFn, so its subtree is
    // pruned: strictly fewer processed tasks than the full tree.
    EXPECT_LT(processed.load(), treeSize(7));

    svc.shutdown();

    // Dead-lettered tasks count as accounted: the job drained to zero
    // outstanding and the global ledger balances exactly.
    std::string why;
    EXPECT_TRUE(verify.checkJobDrained(job.id(), &why)) << why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.poisonedTasks, injected);
    // Each poisoned task burned maxAttempts - 1 retries; no other
    // task ever threw.
    EXPECT_EQ(stats.taskRetries,
              injected * (spec.retry.maxAttempts - 1));
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
}

/** Without the dead-letter policy, a poisoned task exhausts its
 *  retries and fails the job — the pre-existing semantics. */
TEST(Service, PoisonedTaskFailsJobWithoutDeadLetterPolicy)
{
    MultiQueueScheduler sched(1);
    ScopedFaultInjection faults(19);
    faults->arm(faultsite::SvcTaskPoison, FaultMode::OneShot, 3);

    ServiceOptions options;
    options.numThreads = 1;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "no-quarantine";
    spec.process = treeJob(processed);
    spec.initial = {Task{0, 0, 4}};
    spec.retry.maxAttempts = 2;
    spec.retry.backoffBaseUs = 5;
    spec.retry.backoffMaxUs = 50;
    JobHandle job = svc.submit(std::move(spec));

    EXPECT_EQ(job.wait(), JobState::Failed);
    EXPECT_NE(job.error().find("poison"), std::string::npos);
    EXPECT_EQ(job.poisonedTasks(), 0u);
    EXPECT_TRUE(job.deadLetters().empty());
    EXPECT_EQ(svc.stats().poisonedTasks, 0u);
}

/**
 * Escalation: with a restart budget of one, the second worker death
 * exhausts it — the service fails every live job with an escalation
 * error, rejects new submissions, and still drains to exact task
 * conservation.
 */
TEST(Service, EscalationFailsServiceAfterRestartBudget)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler inner(threads);
    VerifyingScheduler verify(inner);

    ScopedFaultInjection faults(23);
    faults->arm(faultsite::SvcWorkerDie, FaultMode::EveryNth, 300);

    ServiceOptions options;
    options.numThreads = threads;
    options.supervisor.enabled = true;
    options.supervisor.probeIntervalMs = 1;
    options.supervisor.suspectAfterMs = 500;
    options.supervisor.wedgedAfterMs = 2000;
    options.supervisor.maxRestarts = 1;
    options.supervisor.restartWindowMs = 60000;
    ExecutorService svc(verify, options);

    // Effectively unbounded tenant: only escalation can end it.
    std::atomic<int64_t> budget{1 << 28};
    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "doomed-tenant";
    spec.process = replenishJob(budget, processed);
    for (uint32_t i = 0; i < 8; ++i)
        spec.initial.push_back(Task{i, i, 0});
    JobHandle job = svc.submit(std::move(spec));

    EXPECT_EQ(job.wait(), JobState::Failed);
    EXPECT_NE(job.error().find("escalated"), std::string::npos);
    EXPECT_TRUE(svc.escalated());

    JobSpec late;
    late.name = "too-late";
    late.process = replenishJob(budget, processed);
    late.initial = {Task{0, 99, 0}};
    JobHandle rejected = svc.submit(std::move(late));
    EXPECT_EQ(rejected.state(), JobState::Rejected);
    EXPECT_NE(rejected.error().find("escalated"), std::string::npos);

    svc.shutdown();

    std::string why;
    EXPECT_TRUE(verify.checkJobDrained(job.id(), &why)) << why;
    EXPECT_TRUE(verify.checkComplete(false, &why)) << why;

    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.workerRestarts, 1u); // budget spent exactly
    EXPECT_GE(stats.crashesDetected, 2u);
    EXPECT_TRUE(stats.escalated);
    EXPECT_EQ(stats.failed, 1u);
}

/**
 * TSan regression: JobHandle::wait()/waitFor()/cancel() racing
 * ExecutorService::shutdown() from independent threads. The handles'
 * record outlives the service entry, so every combination must be
 * data-race-free and every job must still reach a terminal state.
 */
TEST(Service, WaitAndCancelRaceShutdown)
{
    constexpr unsigned threads = 2;
    MultiQueueScheduler sched(threads);
    ServiceOptions options;
    options.numThreads = threads;
    options.admissionCapacity = 16;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> processed{0};
    std::vector<JobHandle> jobs;
    for (int i = 0; i < 6; ++i) {
        JobSpec spec;
        spec.name = "racer-" + std::to_string(i);
        spec.process = treeJob(processed);
        spec.initial = {Task{0, uint32_t(i), 4}};
        jobs.push_back(svc.submit(std::move(spec)));
    }

    std::thread waiter([&jobs] {
        for (JobHandle &job : jobs) {
            JobState s = job.wait();
            EXPECT_TRUE(jobStateTerminal(s));
        }
    });
    std::thread canceller([&jobs] {
        for (JobHandle &job : jobs) {
            job.cancel(); // either side of the race is legal
            JobState probe;
            job.waitFor(1, &probe);
        }
    });
    svc.shutdown(); // concurrent with both racers

    waiter.join();
    canceller.join();
    for (JobHandle &job : jobs)
        EXPECT_TRUE(job.done()) << job.name();
}

// ------------------------------------ weighted fair sharing (tenants)

/** A single-task job for `tenant` whose ProcessFn bumps `done`. */
JobSpec
tenantJob(TenantId tenant, std::atomic<uint64_t> &done, uint32_t node)
{
    JobSpec spec;
    spec.name = "t" + std::to_string(tenant) + "-" + std::to_string(node);
    spec.tenant = tenant;
    spec.process = [&done](unsigned, const Task &,
                           std::vector<Task> &) {
        done.fetch_add(1, std::memory_order_acq_rel);
    };
    spec.initial = {Task{0, node, 0}};
    return spec;
}

/** Hold the single worker inside a job until `release` flips, so a
 *  test can queue a backlog before any dispatch happens. */
JobHandle
submitBlocker(ExecutorService &svc, std::atomic<bool> &release)
{
    auto entered = std::make_shared<std::atomic<bool>>(false);
    JobSpec spec;
    spec.name = "blocker";
    spec.process = [&release, entered](unsigned, const Task &,
                                       std::vector<Task> &) {
        entered->store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
    };
    spec.initial = {Task{0, 9999, 0}};
    JobHandle handle = svc.submit(std::move(spec));
    while (!entered->load(std::memory_order_acquire))
        std::this_thread::yield();
    return handle;
}

TEST(Fairness, WeightedTenantsSplitDispatchTwoToOne)
{
    // One worker + a global in-flight budget of 1 makes dispatch
    // strictly serial, so the SFQ pick order IS the completion order:
    // with weights 2:1 and unit-cost jobs, every window of three
    // dispatches serves tenant 1 twice and tenant 2 once. The ±15%
    // acceptance band is generous for this deterministic setup; the
    // bound below is tighter.
    MultiQueueScheduler inner(1);
    VerifyingScheduler sched(inner);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 128;
    options.maxInFlightTasks = 1;
    options.tenants[1].weight = 2.0;
    options.tenants[2].weight = 1.0;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    JobHandle blocker = submitBlocker(svc, release);

    constexpr uint64_t kJobsPerTenant = 30;
    std::atomic<uint64_t> heavyDone{0};
    std::atomic<uint64_t> lightDone{0};
    std::atomic<uint64_t> lightAtHeavyEnd{~uint64_t(0)};
    std::vector<JobHandle> jobs;
    for (uint64_t i = 0; i < kJobsPerTenant; ++i) {
        JobSpec heavy = tenantJob(1, heavyDone, uint32_t(i));
        // Snapshot the light tenant's progress the instant the heavy
        // backlog empties: the 2:1 share claim only holds while BOTH
        // tenants are backlogged.
        heavy.process = [&](unsigned, const Task &,
                            std::vector<Task> &) {
            if (heavyDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                kJobsPerTenant) {
                lightAtHeavyEnd.store(
                    lightDone.load(std::memory_order_acquire),
                    std::memory_order_release);
            }
        };
        jobs.push_back(svc.submit(std::move(heavy)));
        jobs.push_back(svc.submit(tenantJob(2, lightDone, uint32_t(i))));
    }
    for (const JobHandle &job : jobs)
        ASSERT_NE(job.state(), JobState::Rejected) << job.error();

    release.store(true, std::memory_order_release);
    EXPECT_EQ(blocker.wait(), JobState::Completed);
    for (JobHandle &job : jobs)
        EXPECT_EQ(job.wait(), JobState::Completed) << job.name();

    // While tenant 1 drained its 30 jobs, tenant 2 must have been
    // served half as often: 15 ± 15% (plus the startup transient).
    uint64_t light = lightAtHeavyEnd.load(std::memory_order_acquire);
    EXPECT_GE(light, 12u);
    EXPECT_LE(light, 18u);

    std::vector<TenantStats> tenants = svc.tenantStats();
    ASSERT_GE(tenants.size(), 3u); // tenant 0 (blocker) + 1 + 2
    EXPECT_EQ(tenants[1].tenant, 1u);
    EXPECT_EQ(tenants[1].weight, 2.0);
    EXPECT_EQ(tenants[1].jobsCompleted, kJobsPerTenant);
    EXPECT_EQ(tenants[1].tasksProcessed, kJobsPerTenant);
    EXPECT_EQ(tenants[2].jobsCompleted, kJobsPerTenant);

    svc.shutdown();
    // Exact conservation, per job and overall: every incarnation
    // pushed was popped exactly once.
    std::string why;
    EXPECT_TRUE(sched.checkComplete(false, &why)) << why;
    for (const JobHandle &job : jobs)
        EXPECT_EQ(sched.popsForJob(job.id()), 1u) << job.name();
}

TEST(Fairness, WeightOneTenantProgressesUnderHeavyFlood)
{
    // The starvation regression the tentpole fixes: under the old
    // strict (priority, id) admission queue, a continuously-backlogged
    // high-priority tenant kept the victim's job queued indefinitely —
    // here the victim would wait for all 200 flood jobs. Under SFQ a
    // weight-1 tenant faces at most ~weight-ratio dispatches per round,
    // so the victim completes while nearly all of the flood is still
    // queued.
    MultiQueueScheduler inner(1);
    VerifyingScheduler sched(inner);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 512;
    options.maxInFlightTasks = 1;
    options.tenants[1].weight = 8.0;
    options.tenants[2].weight = 1.0;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    JobHandle blocker = submitBlocker(svc, release);

    constexpr uint64_t kFloodJobs = 200;
    std::atomic<uint64_t> floodDone{0};
    std::atomic<uint64_t> victimDone{0};
    std::atomic<uint64_t> floodAtVictim{~uint64_t(0)};
    std::vector<JobHandle> flood;
    for (uint64_t i = 0; i < kFloodJobs; ++i) {
        JobSpec spec = tenantJob(1, floodDone, uint32_t(i));
        spec.priority = 0; // the flood outranks the victim on priority
        flood.push_back(svc.submit(std::move(spec)));
    }
    JobSpec victimSpec = tenantJob(2, victimDone, 7000);
    victimSpec.priority = 5;
    victimSpec.process = [&](unsigned, const Task &,
                             std::vector<Task> &) {
        victimDone.fetch_add(1, std::memory_order_acq_rel);
        floodAtVictim.store(floodDone.load(std::memory_order_acquire),
                            std::memory_order_release);
    };
    JobHandle victim = svc.submit(std::move(victimSpec));
    ASSERT_NE(victim.state(), JobState::Rejected) << victim.error();
    EXPECT_EQ(victim.tenant(), 2u);

    release.store(true, std::memory_order_release);
    EXPECT_EQ(victim.wait(), JobState::Completed);
    // The victim ran within its first weighted round: at most ~the
    // weight ratio (8) plus the startup transient of flood dispatches
    // preceded it — not the whole 200-job flood.
    EXPECT_LE(floodAtVictim.load(std::memory_order_acquire), 20u);

    for (JobHandle &job : flood)
        EXPECT_EQ(job.wait(), JobState::Completed) << job.name();
    EXPECT_EQ(blocker.wait(), JobState::Completed);
    svc.shutdown();
    std::string why;
    EXPECT_TRUE(sched.checkComplete(false, &why)) << why;
}

TEST(Fairness, TenantQueueQuotaRejectsWithTypedReason)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.admissionCapacity = 16;
    options.tenants[5].maxQueuedJobs = 1;
    ExecutorService svc(sched, options);

    std::atomic<bool> release{false};
    JobHandle blocker = submitBlocker(svc, release);

    std::atomic<uint64_t> done{0};
    JobHandle first = svc.submit(tenantJob(5, done, 1));
    EXPECT_NE(first.state(), JobState::Rejected) << first.error();

    JobHandle second = svc.submit(tenantJob(5, done, 2));
    EXPECT_EQ(second.state(), JobState::Rejected);
    EXPECT_EQ(second.rejectReason(), RejectReason::TenantQueueFull);
    EXPECT_NE(second.error().find("queue quota"), std::string::npos)
        << second.error();
    EXPECT_STREQ(rejectReasonName(second.rejectReason()),
                 "tenant_queue_full");

    // The quota is per tenant: another tenant still has queue space,
    // and the service-wide capacity was never the limit.
    JobHandle other = svc.submit(tenantJob(6, done, 3));
    EXPECT_NE(other.state(), JobState::Rejected) << other.error();
    EXPECT_EQ(other.rejectReason(), RejectReason::None);

    release.store(true, std::memory_order_release);
    EXPECT_EQ(first.wait(), JobState::Completed);
    EXPECT_EQ(other.wait(), JobState::Completed);
    EXPECT_EQ(svc.stats().rejected, 1u);
    std::vector<TenantStats> tenants = svc.tenantStats();
    for (const TenantStats &ts : tenants) {
        if (ts.tenant == 5) {
            EXPECT_EQ(ts.submitted, 2u);
            EXPECT_EQ(ts.rejected, 1u);
        }
    }
}

TEST(Fairness, TenantRateLimitAlwaysRejects)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    options.blockWhenFull = true; // rate limits must reject anyway
    options.tenants[3].admitRatePerSec = 0.001; // no refill in-test
    options.tenants[3].admitBurst = 1.0;
    ExecutorService svc(sched, options);

    std::atomic<uint64_t> done{0};
    JobHandle first = svc.submit(tenantJob(3, done, 1));
    EXPECT_NE(first.state(), JobState::Rejected) << first.error();

    JobHandle second = svc.submit(tenantJob(3, done, 2));
    EXPECT_EQ(second.state(), JobState::Rejected);
    EXPECT_EQ(second.rejectReason(), RejectReason::TenantRateLimited);
    EXPECT_NE(second.error().find("rate limit"), std::string::npos)
        << second.error();

    // Unlimited tenants are unaffected.
    JobHandle other = svc.submit(tenantJob(4, done, 3));
    EXPECT_NE(other.state(), JobState::Rejected) << other.error();
    EXPECT_EQ(first.wait(), JobState::Completed);
    EXPECT_EQ(other.wait(), JobState::Completed);
}

// ------------------------------------------- cooperative preemption

TEST(Preemption, DeprioritizeRetagsQueuedIncarnationsExactly)
{
    MultiQueueScheduler inner(1);
    VerifyingScheduler sched(inner);
    ServiceOptions options;
    options.numThreads = 1;
    ExecutorService svc(sched, options);

    // Six seed tasks; the first one processed parks the only worker
    // until the main thread has deprioritized the job, so the other
    // five incarnations are still queued when the demote level rises.
    constexpr uint32_t kSeeds = 6;
    std::atomic<bool> gateEntered{false};
    std::atomic<bool> gateRelease{false};
    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "preempted";
    spec.demotePenalty = 1000;
    spec.process = [&](unsigned, const Task &, std::vector<Task> &) {
        if (processed.fetch_add(1, std::memory_order_acq_rel) == 0) {
            gateEntered.store(true, std::memory_order_release);
            while (!gateRelease.load(std::memory_order_acquire))
                std::this_thread::yield();
        }
    };
    for (uint32_t i = 0; i < kSeeds; ++i)
        spec.initial.push_back(Task{10, i, 0});
    JobHandle job = svc.submit(std::move(spec));
    ASSERT_NE(job.state(), JobState::Rejected) << job.error();
    EXPECT_EQ(job.demoteLevel(), 0u);

    while (!gateEntered.load(std::memory_order_acquire))
        std::this_thread::yield();
    EXPECT_TRUE(job.deprioritize());
    EXPECT_EQ(job.demoteLevel(), 1u);
    gateRelease.store(true, std::memory_order_release);

    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(processed.load(), uint64_t(kSeeds));
    // Every not-yet-popped incarnation was re-tagged exactly once.
    EXPECT_EQ(svc.stats().demotedTasks, uint64_t(kSeeds - 1));
    // Terminal jobs can no longer be deprioritized.
    EXPECT_FALSE(job.deprioritize());

    svc.shutdown();
    // A re-tag is one completed incarnation plus one created one: the
    // ledger stays exactly balanced, and the per-job pop count is the
    // seeds plus one extra pop per re-tag.
    std::string why;
    EXPECT_TRUE(sched.checkComplete(false, &why)) << why;
    EXPECT_TRUE(sched.checkJobDrained(job.id(), &why)) << why;
    EXPECT_EQ(sched.popsForJob(job.id()),
              uint64_t(kSeeds + (kSeeds - 1)));
}

TEST(Preemption, DeadlinePressureAutoDemotesOnce)
{
    MultiQueueScheduler sched(1);
    ServiceOptions options;
    options.numThreads = 1;
    ExecutorService svc(sched, options);

    // Self-replenishing job that outlives its demoteAfterMs budget by a
    // wide margin: the deadline monitor must demote it exactly once
    // (level 1), and the job still completes. Three parallel chains on
    // one worker keep stamp-0 incarnations queued at demotion time, so
    // the pop-time re-tag path fires too.
    std::atomic<int64_t> budget{400};
    std::atomic<uint64_t> processed{0};
    JobSpec spec;
    spec.name = "pressured";
    spec.process = replenishJob(budget, processed, /*sleepUs=*/500);
    spec.initial = {Task{0, 0, 0}, Task{0, 1, 0}, Task{0, 2, 0}};
    spec.demoteAfterMs = 25;
    JobHandle job = svc.submit(std::move(spec));
    ASSERT_NE(job.state(), JobState::Rejected) << job.error();

    EXPECT_EQ(job.wait(), JobState::Completed);
    EXPECT_EQ(job.demoteLevel(), 1u);
    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.autoDemotedJobs, 1u);
    EXPECT_GE(stats.demotedTasks, 1u);
}

} // namespace
} // namespace hdcps
