/**
 * @file
 * Unit tests for the multicore simulator substrate: config checking,
 * the mesh NoC (XY routing, serialization, contention), the cache/
 * coherence cost model, and SimMachine bookkeeping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "algos/workload.h"
#include "graph/generators.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "sim/noc.h"
#include "simsched/common.h"
#include "simsched/runner.h"
#include "support/fault.h"

namespace hdcps {
namespace {

SimConfig
smallConfig()
{
    SimConfig config;
    config.numCores = 16;
    config.meshWidth = 4;
    return config;
}

TEST(SimConfig, DefaultsAreTableI)
{
    SimConfig config;
    config.check();
    EXPECT_EQ(config.numCores, 64u);
    EXPECT_EQ(config.meshHeight(), 8u);
    EXPECT_EQ(config.hrqEntries, 32u);
    EXPECT_EQ(config.hpqEntries, 48u);
    EXPECT_EQ(config.hwQueueLatency, 5u);
    EXPECT_EQ(config.taskBits, 128u);
}

TEST(SimConfig, PrintTableMentionsKeyParameters)
{
    SimConfig config;
    std::ostringstream os;
    config.printTable(os);
    std::string out = os.str();
    EXPECT_NE(out.find("64 RISC-V"), std::string::npos);
    EXPECT_NE(out.find("32 hRQ, 48 hPQ"), std::string::npos);
    EXPECT_NE(out.find("128-bits"), std::string::npos);
}

TEST(SimConfig, RejectsBadMesh)
{
    SimConfig config;
    config.numCores = 10;
    config.meshWidth = 4; // 10 % 4 != 0
    EXPECT_DEATH(config.check(), "mesh width");
}

// ------------------------------------------------------------------ NoC

TEST(Noc, HopCountIsManhattan)
{
    NocMesh noc(smallConfig());
    EXPECT_EQ(noc.hopCount(0, 0), 0u);
    EXPECT_EQ(noc.hopCount(0, 3), 3u);   // same row
    EXPECT_EQ(noc.hopCount(0, 12), 3u);  // same column (4x4)
    EXPECT_EQ(noc.hopCount(0, 15), 6u);  // corner to corner
    EXPECT_EQ(noc.hopCount(15, 0), 6u);
}

TEST(Noc, UncontendedLatencyFormula)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    // 1 hop, 1 flit: hop latency only.
    EXPECT_EQ(noc.uncontendedLatency(0, 1, 64), Cycle(config.hopLatency));
    // 2 flits add one serialization cycle.
    EXPECT_EQ(noc.uncontendedLatency(0, 1, 128),
              Cycle(config.hopLatency) + 1);
    EXPECT_EQ(noc.uncontendedLatency(5, 5, 64), 0u);
}

TEST(Noc, TransferMatchesUncontendedWhenIdle)
{
    NocMesh noc(smallConfig());
    Cycle arrival = noc.transfer(0, 15, 128, 100);
    EXPECT_EQ(arrival, 100 + noc.uncontendedLatency(0, 15, 128));
}

TEST(Noc, LinkContentionSerializesMessages)
{
    NocMesh noc(smallConfig());
    // Two messages leaving tile 0 eastward at the same cycle share the
    // first link; the second must wait for the first's flits.
    Cycle a = noc.transfer(0, 1, 64 * 8, 0); // 8 flits
    Cycle b = noc.transfer(0, 1, 64 * 8, 0);
    EXPECT_GT(b, a);
    EXPECT_GT(noc.stats().contentionCycles, 0u);
}

TEST(Noc, DisjointPathsDoNotInterfere)
{
    NocMesh noc(smallConfig());
    Cycle a = noc.transfer(0, 1, 64, 0);
    Cycle b = noc.transfer(14, 15, 64, 0); // far away link
    EXPECT_EQ(a, noc.uncontendedLatency(0, 1, 64));
    EXPECT_EQ(b, noc.uncontendedLatency(14, 15, 64));
}

TEST(Noc, StatsAccumulate)
{
    NocMesh noc(smallConfig());
    noc.transfer(0, 5, 128, 0);
    EXPECT_EQ(noc.stats().messages, 1u);
    EXPECT_EQ(noc.stats().flits, 2u);
    EXPECT_GT(noc.stats().hops, 0u);
    noc.resetStats();
    EXPECT_EQ(noc.stats().messages, 0u);
}

TEST(Noc, SelfTransferIsFree)
{
    NocMesh noc(smallConfig());
    EXPECT_EQ(noc.transfer(3, 3, 1024, 77), 77u);
}

// ---------------------------------------------------------------- cache

TEST(Cache, FirstAccessMissesToDram)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    Cycle cost = cache.access(0, 0x1000, false, 0);
    EXPECT_GE(cost, Cycle(config.dramLatency));
    EXPECT_EQ(cache.stats().dramFetches, 1u);
}

TEST(Cache, SecondAccessHitsL1)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    cache.access(0, 0x1000, false, 0);
    Cycle cost = cache.access(0, 0x1000, false, 10);
    EXPECT_EQ(cost, Cycle(config.l1Latency));
    EXPECT_EQ(cache.stats().l1Hits, 1u);
}

TEST(Cache, SameLineDifferentWordStillHits)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    cache.access(0, 0x1000, false, 0);
    EXPECT_EQ(cache.access(0, 0x1008, false, 1),
              Cycle(config.l1Latency));
}

TEST(Cache, EvictedLineFallsBackToL2)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    // Fill one L1 set beyond its ways; the L1 has
    // l1SizeBytes/(64*4) sets, so stride by set count * 64.
    unsigned sets = config.l1SizeBytes / (config.lineBytes * config.l1Ways);
    uint64_t stride = uint64_t(sets) * config.lineBytes;
    for (unsigned i = 0; i <= config.l1Ways; ++i)
        cache.access(0, 0x100000 + i * stride, false, i);
    // The first line is gone from L1 but still in the larger L2.
    Cycle cost = cache.access(0, 0x100000, false, 100);
    EXPECT_EQ(cost, Cycle(config.l1Latency + config.l2Latency));
    EXPECT_GE(cache.stats().l2Hits, 1u);
}

TEST(Cache, DirtyRemoteLineFetchedFromOwner)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    cache.access(1, 0x2000, true, 0); // core 1 dirties the line
    Cycle cost = cache.access(0, 0x2000, false, 50);
    EXPECT_EQ(cache.stats().remoteFetches, 1u);
    // Cache-to-cache must be cheaper than a fresh DRAM round trip from
    // the same distance (no 100-cycle DRAM latency in it).
    EXPECT_LT(cost, Cycle(config.dramLatency) * 2);
}

TEST(Cache, WriteStealsLineAndCountsInvalidation)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    cache.access(1, 0x3000, true, 0);
    cache.access(0, 0x3000, true, 10);
    EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(Cache, ScanChargesPerLine)
{
    SimConfig config = smallConfig();
    NocMesh noc(config);
    CacheModel cache(config, noc);
    uint64_t before = cache.stats().accesses;
    cache.scan(0, 0x4000, 256, false, 0); // 4 lines
    EXPECT_EQ(cache.stats().accesses - before, 4u);
    // Zero-byte scan is free.
    EXPECT_EQ(cache.scan(0, 0x5000, 0, false, 0), 0u);
}

// -------------------------------------------------------------- machine

TEST(Machine, AdvanceChargesClockAndBreakdown)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 3});
    auto w = makeWorkload("bfs", g, 0);
    SimMachine m(smallConfig(), *w, 1);
    m.advance(2, 100, Component::Compute);
    EXPECT_EQ(m.now(2), 100u);
    EXPECT_EQ(m.breakdownOf(2)[Component::Compute], 100u);
    m.stallUntil(2, 250);
    EXPECT_EQ(m.now(2), 250u);
    EXPECT_EQ(m.breakdownOf(2)[Component::Comm], 150u);
    m.stallUntil(2, 100); // no going backwards
    EXPECT_EQ(m.now(2), 250u);
}

TEST(Machine, MessagesDeliverAfterArrival)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 3});
    auto w = makeWorkload("bfs", g, 0);
    SimMachine m(smallConfig(), *w, 1);
    m.sendTaskMessage(0, 15, Task{7, 3, 0}, 128, 0, 42);
    EXPECT_EQ(m.messagesInFlight(), 1u);
    std::vector<DeliveredMessage> out;
    m.deliveredMessages(15, out);
    EXPECT_TRUE(out.empty()); // core 15 is still at cycle 0
    Cycle when = 0;
    ASSERT_TRUE(m.nextArrival(15, when));
    m.stallUntil(15, when);
    m.deliveredMessages(15, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].task.priority, 7u);
    EXPECT_EQ(out[0].tag, 42u);
    EXPECT_EQ(m.messagesInFlight(), 0u);
}

TEST(Machine, PendingAccounting)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 3});
    auto w = makeWorkload("bfs", g, 0);
    SimMachine m(smallConfig(), *w, 1);
    EXPECT_EQ(m.pending(), 0);
    m.taskCreated(3);
    m.taskRetired();
    EXPECT_EQ(m.pending(), 2);
}

TEST(Machine, ProcessTaskChargesComputeAndRunsSemantics)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 3});
    auto w = makeWorkload("sssp", g, 0);
    SimMachine m(smallConfig(), *w, 1);
    std::vector<Task> children;
    Cycle cost = m.processTask(0, Task{0, 0, 0}, children);
    EXPECT_GT(cost, 0u);
    EXPECT_FALSE(children.empty()); // source relaxes its neighbours
    EXPECT_EQ(m.breakdownOf(0).tasksProcessed, 1u);
    EXPECT_GT(m.breakdownOf(0)[Component::Compute], 0u);
}

TEST(Machine, AllocLocalStaysInCoreRegion)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 3});
    auto w = makeWorkload("bfs", g, 0);
    SimMachine m(smallConfig(), *w, 1);
    uint64_t a = m.allocLocal(3, 64);
    uint64_t b = m.allocLocal(3, 64);
    EXPECT_NE(a, b);
    EXPECT_EQ(a, m.coreLocalAddr(3, 0));
}

TEST(Machine, SequentialRunVerifiesAndTerminates)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 5});
    auto w = makeWorkload("sssp", g, 0);
    SimConfig config = smallConfig();
    Cycle cycles = simulateSequentialCycles(*w, config, 1);
    EXPECT_GT(cycles, 0u);
}

TEST(Machine, SerialResourceSerializes)
{
    SerialResource r;
    EXPECT_EQ(r.acquire(10, 5), 15u);
    EXPECT_EQ(r.acquire(0, 5), 20u);  // queued behind the first op
    EXPECT_EQ(r.acquire(100, 5), 105u);
    EXPECT_EQ(r.nextFree(), 105u);
}

TEST(Machine, SwPqCostGrowsWithSize)
{
    SimConfig config;
    EXPECT_LT(swPqOpCost(config, 0), swPqOpCost(config, 1000));
    EXPECT_EQ(swPqOpCost(config, 10),
              config.swPqBaseCost + Cycle(config.swPqPerLevelCost) * 4);
}

TEST(BagTable, EncodesAndResolves)
{
    SimBagTable table;
    std::vector<Task> payload = {Task{5, 1, 0}, Task{5, 2, 0}};
    Task metadata = table.add(5, payload, 3, 0xdead);
    EXPECT_TRUE(SimBagTable::isBag(metadata));
    EXPECT_FALSE(SimBagTable::isBag(Task{5, 1, 0}));
    SimBag &bag = table.get(metadata);
    EXPECT_EQ(bag.priority, 5u);
    EXPECT_EQ(bag.tasks.size(), 2u);
    EXPECT_EQ(bag.creator, 3u);
    EXPECT_EQ(table.numBags(), 1u);
}

// ---------------------- termination protocol under injected faults

/**
 * The machine's run loop terminates on pending==0 and then asserts
 * inFlight==0 — the simulated counterpart of the runtime's in-flight
 * protocol. Injected hRQ-full rejections and NoC delays reroute and
 * reorder events; neither may break termination or the result.
 */
TEST(MachineTermination, SurvivesInjectedHrqFullRejections)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 13});
    auto w = makeWorkload("sssp", g, 0);
    ScopedFaultInjection faults(3);
    // Every 3rd hardware-queue push reports full, forcing the
    // spill/retry machinery throughout the run.
    faults->arm(faultsite::SimHrqFull, FaultMode::EveryNth, 3);
    SimResult r = simulate("hdcps-hw", *w, smallConfig(), 1);
    EXPECT_GT(faults->fireCount(faultsite::SimHrqFull), 0u);
    ASSERT_TRUE(r.verified) << r.verifyError;
    EXPECT_GT(r.completionCycles, 0u);
}

TEST(MachineTermination, SurvivesInjectedNocDelays)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 13});
    auto w = makeWorkload("bfs", g, 0);
    Cycle baseline =
        simulate("hdcps-hw", *w, smallConfig(), 1).completionCycles;

    ScopedFaultInjection faults(4);
    // Every message crossing the NoC eats an extra 500-cycle delay:
    // arrival order scrambles relative to issue order.
    faults->arm(faultsite::SimNocDelay, FaultMode::Delay, 500);
    SimResult r = simulate("hdcps-hw", *w, smallConfig(), 1);
    EXPECT_GT(faults->fireCount(faultsite::SimNocDelay), 0u);
    ASSERT_TRUE(r.verified) << r.verifyError;
    // Delays must cost cycles, never deadlock the event loop.
    EXPECT_GT(r.completionCycles, baseline);
}

TEST(MachineTermination, SurvivesCombinedHrqFullAndNocDelay)
{
    Graph g = makeRoadGrid(8, 8, {.seed = 17});
    auto w = makeWorkload("sssp", g, 0);
    ScopedFaultInjection faults(5);
    faults->arm(faultsite::SimHrqFull, FaultMode::Probability, 0.2);
    faults->arm(faultsite::SimNocDelay, FaultMode::Delay, 200);
    SimResult r = simulate("hdcps-hw", *w, smallConfig(), 1);
    ASSERT_TRUE(r.verified) << r.verifyError;
    EXPECT_GT(r.completionCycles, 0u);
}

} // namespace
} // namespace hdcps
