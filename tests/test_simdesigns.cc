/**
 * @file
 * Integration tests for every scheduler design on the simulated
 * machine: the full design x kernel matrix must verify against the
 * sequential references, runs must be deterministic for a seed, and
 * the headline shape relations of the paper (HW beats SW, HD-CPS beats
 * RELD, Swarm's work efficiency) must hold on the generated inputs.
 */

#include <gtest/gtest.h>

#include "algos/workload.h"
#include "graph/generators.h"
#include "sim/machine.h"
#include "simsched/runner.h"
#include "simsched/sim_hdcps.h"
#include "simsched/sim_swarm.h"
#include "support/fault.h"

namespace hdcps {
namespace {

SimConfig
cores16()
{
    SimConfig config;
    config.numCores = 16;
    config.meshWidth = 4;
    return config;
}

struct DesignKernel
{
    const char *design;
    const char *kernel;
};

class DesignMatrix : public testing::TestWithParam<DesignKernel>
{
};

TEST_P(DesignMatrix, VerifiesOnRoadInput)
{
    const DesignKernel &param = GetParam();
    Graph g = makeRoadGrid(12, 12, {.seed = 51});
    auto w = makeWorkload(param.kernel, g, 0);
    SimResult r = simulate(param.design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified)
        << param.design << "/" << param.kernel << ": " << r.verifyError;
    EXPECT_GT(r.completionCycles, 0u);
    EXPECT_GT(r.total.tasksProcessed, 0u);
}

std::vector<DesignKernel>
designMatrix()
{
    std::vector<DesignKernel> params;
    size_t designCount = 0;
    const char *const *designs = designNames(designCount);
    for (size_t d = 0; d < designCount; ++d) {
        for (const char *kernel :
             {"sssp", "bfs", "astar", "mst", "color", "pagerank"}) {
            params.push_back({designs[d], kernel});
        }
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(
    Full, DesignMatrix, testing::ValuesIn(designMatrix()),
    [](const testing::TestParamInfo<DesignKernel> &info) {
        std::string name = std::string(info.param.design) + "_" +
                           info.param.kernel;
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(SimDesigns, DeterministicForSeed)
{
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimResult a = simulate("hdcps-hw", *w, cores16(), 9);
    SimResult b = simulate("hdcps-hw", *w, cores16(), 9);
    EXPECT_EQ(a.completionCycles, b.completionCycles);
    EXPECT_EQ(a.total.tasksProcessed, b.total.tasksProcessed);
}

TEST(SimDesigns, DifferentSeedsStillVerify)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 3});
    auto w = makeWorkload("sssp", g, 0);
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        SimResult r = simulate("hdcps-sw", *w, cores16(), seed);
        EXPECT_TRUE(r.verified) << "seed " << seed;
    }
}

TEST(SimDesigns, ParallelBeatsSequentialOnAllDesigns)
{
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("bfs", g, 0);
    SimConfig config = cores16();
    Cycle seq = simulateSequentialCycles(*w, config, 1);
    for (const char *design : {"pmod", "hdcps-sw", "hdcps-hw", "swarm"}) {
        SimResult r = simulate(design, *w, config, 1);
        EXPECT_LT(r.completionCycles, seq)
            << design << " failed to beat sequential";
    }
}

TEST(SimDesigns, HardwareAssistBeatsSoftware)
{
    // The paper's headline HW result: hRQ+hPQ ~20% over HD-CPS:SW.
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimConfig config = cores16();
    Cycle sw = simulate("hdcps-sw", *w, config, 1).completionCycles;
    Cycle hw = simulate("hdcps-hw", *w, config, 1).completionCycles;
    EXPECT_LT(hw, sw);
}

TEST(SimDesigns, HdCpsBeatsReld)
{
    // Figure 5: the HD-CPS software stack improves on RELD.
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimConfig config = cores16();
    Cycle reld = simulate("reld", *w, config, 1).completionCycles;
    Cycle hdcps = simulate("hdcps-sw", *w, config, 1).completionCycles;
    EXPECT_LT(hdcps, reld);
}

TEST(SimDesigns, SwarmHasBestWorkEfficiency)
{
    // Swarm executes (nearly) only the ordered-execution tasks; the
    // relaxed designs do redundant work.
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimConfig config = cores16();
    SimResult swarm = simulate("swarm", *w, config, 1);
    SimResult reld = simulate("reld", *w, config, 1);
    EXPECT_LE(swarm.total.tasksProcessed - swarm.total.aborts,
              reld.total.tasksProcessed);
}

TEST(SimDesigns, SwarmCountsAborts)
{
    Graph g = makePaperInput("cage", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimSwarm design;
    SimResult r = simulate(design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(design.totalAborts(), r.total.aborts);
    EXPECT_GT(design.traceSize(), 0u);
}

TEST(SimDesigns, BreakdownComponentsSumToWork)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 61});
    auto w = makeWorkload("sssp", g, 0);
    SimResult r = simulate("hdcps-sw", *w, cores16(), 1);
    EXPECT_GT(r.total[Component::Compute], 0u);
    EXPECT_GT(r.total[Component::Enqueue], 0u);
    EXPECT_GT(r.total[Component::Dequeue], 0u);
    // Every core's clock is bounded by completion plus one idle poll
    // at the maximum backoff (the run loop doubles the poll quantum up
    // to 2^7x while a core keeps coming up empty).
    Cycle slack = Cycle(cores16().idlePollCycles) << 8;
    for (const Breakdown &b : r.perCore)
        EXPECT_LE(b.total(), r.completionCycles + slack);
}

TEST(SimDesigns, HdCpsHwUsesMessages)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 71});
    auto w = makeWorkload("bfs", g, 0);
    SimResult hw = simulate("hdcps-hw", *w, cores16(), 1);
    EXPECT_GT(hw.noc.messages, 0u);
    SimResult sw = simulate("hdcps-sw", *w, cores16(), 1);
    // Software mode sends no explicit task messages; its NoC traffic is
    // all coherence (charged through the cache model).
    EXPECT_GT(hw.noc.messages, sw.noc.messages);
}

TEST(SimDesigns, QueueSizeZeroDegeneratesToSoftware)
{
    // Paper: "If the size of both these queues is set to zero, then
    // the system becomes a software-only solution."
    Graph g = makeRoadGrid(10, 10, {.seed = 73});
    auto w = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configHw();
    config.hrqEntries = 0;
    config.hpqEntries = 0;
    auto design = makeHdCpsDesign(config, "hw-zero");
    SimResult r = simulate(*design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
}

TEST(SimDesigns, HrqSpillsWhenTiny)
{
    Graph g = makePaperInput("cage", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configHw();
    config.hrqEntries = 1;
    SimHdCps design(config, "hw-tiny");
    SimResult r = simulate(design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(design.hrqSpills(), 0u);
}

TEST(SimDesigns, FaultForcedHrqSpillStillVerifies)
{
    // sim.hrq.full pretends the hRQ is full on a fraction of arrivals,
    // driving the spill-to-software path at the default (generous)
    // capacity — tasks detour but must all arrive exactly once, which
    // verify() checks against the sequential reference.
    Graph g = makePaperInput("cage", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    ScopedFaultInjection faults(13);
    faults->arm(faultsite::SimHrqFull, FaultMode::Probability, 0.5);
    SimHdCps design(SimHdCps::configHw(), "hw-faulty-hrq");
    SimResult r = simulate(design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
    EXPECT_GT(design.hrqSpills(), 0u);
    EXPECT_GT(faults->fireCount(faultsite::SimHrqFull), 0u);
}

TEST(SimDesigns, FaultForcedHpqEvictStillVerifies)
{
    // sim.hpq.evict forces the evict-to-software path long before the
    // hPQ actually fills; the software PQ absorbs the evictions and
    // the run must still be exactly-once correct.
    Graph g = makePaperInput("cage", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    ScopedFaultInjection faults(17);
    faults->arm(faultsite::SimHpqEvict, FaultMode::EveryNth, 2);
    SimHdCps design(SimHdCps::configHw(), "hw-faulty-hpq");
    SimResult r = simulate(design, *w, cores16(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
    EXPECT_GT(design.hpqEvictions(), 0u);
}

TEST(SimDesigns, FaultInjectedNocDelayOnlySlowsTheRun)
{
    // A degraded NoC (extra cycles per transfer) changes timing, never
    // correctness — and must strictly increase completion time on a
    // communication-heavy run.
    Graph g = makeRoadGrid(12, 12, {.seed = 51});
    auto w = makeWorkload("sssp", g, 0);
    Cycle healthy = simulate("hdcps-hw", *w, cores16(), 1)
                        .completionCycles;
    ScopedFaultInjection faults;
    faults->arm(faultsite::SimNocDelay, FaultMode::Delay, 200);
    SimResult r = simulate("hdcps-hw", *w, cores16(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
    EXPECT_GT(r.completionCycles, healthy);
}

TEST(SimDesigns, FixedTdfSweepAllVerify)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 79});
    auto w = makeWorkload("sssp", g, 0);
    for (unsigned tdf : {10u, 50u, 100u}) {
        SimHdCpsConfig config = SimHdCps::configSw();
        config.tdfMode = SimHdCpsConfig::TdfMode::Fixed;
        config.fixedTdf = tdf;
        auto design = makeHdCpsDesign(config, "fixed-tdf");
        SimResult r = simulate(*design, *w, cores16(), 1);
        EXPECT_TRUE(r.verified) << "tdf " << tdf;
    }
}

TEST(SimDesigns, BagTransportBothModesVerify)
{
    Graph g = makePaperInput("cage", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    for (BagTransport transport :
         {BagTransport::Pull, BagTransport::Push}) {
        SimHdCpsConfig config = SimHdCps::configHw();
        config.bags.transport = transport;
        SimHdCps design(config, "transport");
        SimResult r = simulate(design, *w, cores16(), 1);
        EXPECT_TRUE(r.verified);
        EXPECT_GT(design.bagsCreated(), 0u);
    }
}

TEST(SimDesigns, DriftReportedForAllDesigns)
{
    Graph g = makePaperInput("usa", 1, 7);
    auto w = makeWorkload("sssp", g, 0);
    // Small interval so even short runs produce samples.
    SimResult r = simulate("reld", *w, cores16(), 1, 200);
    EXPECT_GT(r.avgDrift, 0.0);
    EXPECT_GE(r.maxDrift, r.avgDrift);
}

TEST(SimDesigns, SixtyFourCoreTableIMachineWorks)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 83});
    auto w = makeWorkload("bfs", g, 0);
    SimConfig config; // default = Table I, 64 cores
    SimResult r = simulate("hdcps-hw", *w, config, 1);
    EXPECT_TRUE(r.verified);
}

} // namespace
} // namespace hdcps
