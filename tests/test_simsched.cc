/**
 * @file
 * Unit-level tests for the simulator scheduler designs that the
 * end-to-end matrix exercises only as black boxes: OBIM/PMOD delta
 * adaptation on the simulated machine, Software-Minnow staging
 * semantics, Swarm trace construction and abort accounting, the
 * MultiQueue design, and the HD-CPS flow-control/TDF plumbing.
 */

#include <gtest/gtest.h>

#include "algos/workload.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "simsched/runner.h"
#include "simsched/sim_hdcps.h"
#include "simsched/sim_multiqueue.h"
#include "simsched/sim_obim.h"
#include "simsched/sim_swarm.h"

namespace hdcps {
namespace {

SimConfig
cores8()
{
    SimConfig config;
    config.numCores = 8;
    config.meshWidth = 4;
    return config;
}

TEST(SimObimUnit, FixedDeltaNeverChanges)
{
    Graph g = makePaperInput("usa", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimObim design(SimObim::obimConfig(3), "obim");
    simulate(design, *w, cores8(), 1);
    EXPECT_EQ(design.currentDelta(), 3u);
}

TEST(SimObimUnit, PmodDeltaStaysInBounds)
{
    Graph g = makePaperInput("usa", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimObim::Config config = SimObim::pmodConfig(3);
    SimObim design(config, "pmod");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_GE(design.currentDelta(), config.minDelta);
    EXPECT_LE(design.currentDelta(), config.maxDelta);
}

TEST(SimObimUnit, PmodMergesWhenBagsStarve)
{
    // A workload whose priorities are all distinct (chain of unique
    // distances) keeps delta-3 bags nearly empty; PMOD must react by
    // growing delta above its start.
    GraphBuilder b(4096);
    for (NodeId i = 0; i + 1 < 4096; ++i)
        b.addEdge(i, i + 1, 97); // long unique-priority chain
    Graph g = b.build();
    auto w = makeWorkload("sssp", g, 0);
    SimObim design(SimObim::pmodConfig(0), "pmod");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(design.currentDelta(), 0u);
}

TEST(SimObimUnit, SwMinnowWorkersNeverTouchTheMapDirectly)
{
    // With zero minnows the config is invalid only implicitly; with
    // minnows, workers starved of staging must still finish because
    // helpers feed them (termination is the assertion here).
    Graph g = makeRoadGrid(10, 10, {.seed = 4});
    auto w = makeWorkload("bfs", g, 0);
    SimObim design(SimObim::swMinnowConfig(2), "swminnow");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
}

TEST(SimMultiQueueUnit, VerifiesAndBalances)
{
    Graph g = makePaperInput("usa", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimMultiQueue design(2);
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
    // Power-of-two-choices keeps relaxed order decent: redundant work
    // should stay within a small factor of the sequential task count.
    EXPECT_LT(r.total.tasksProcessed, w->sequentialTasks() * 4);
}

TEST(SimSwarmUnit, TraceMatchesSequentialWork)
{
    Graph g = makeRoadGrid(10, 10, {.seed = 4});
    auto w = makeWorkload("sssp", g, 0);
    SimSwarm design;
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    // Executions = trace size + re-executions from aborts, exactly.
    EXPECT_EQ(r.total.tasksProcessed,
              design.traceSize() + design.totalAborts());
}

TEST(SimSwarmUnit, SingleCoreHasNoAborts)
{
    // With one core there is no speculation overlap, hence no abort.
    Graph g = makeRoadGrid(10, 10, {.seed = 4});
    auto w = makeWorkload("sssp", g, 0);
    SimSwarm design;
    SimConfig one;
    one.numCores = 1;
    one.meshWidth = 1;
    SimResult r = simulate(design, *w, one, 1);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(design.totalAborts(), 0u);
    EXPECT_EQ(r.total.tasksProcessed, design.traceSize());
}

TEST(SimSwarmUnit, WiderWindowNeverLosesTasks)
{
    Graph g = makePaperInput("cage", 1, 3);
    auto w = makeWorkload("bfs", g, 0);
    for (unsigned window : {1u, 4u, 32u}) {
        SimSwarm::Config config;
        config.dispatchWindow = window;
        SimSwarm design(config);
        SimResult r = simulate(design, *w, cores8(), 1);
        ASSERT_TRUE(r.verified) << "window " << window;
        ASSERT_EQ(r.total.tasksProcessed,
                  design.traceSize() + design.totalAborts());
    }
}

TEST(SimHdCpsUnit, FlowControlLimitsInFlightPerPair)
{
    // hRQ of 1 with 100% distribution: the capacity counters and the
    // spill path absorb the pressure; spills prove the flag got hit.
    Graph g = makePaperInput("cage", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configHw();
    config.hrqEntries = 1;
    config.tdfMode = SimHdCpsConfig::TdfMode::Fixed;
    config.fixedTdf = 100;
    SimHdCps design(config, "flow");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(design.hrqSpills(), 0u);
}

TEST(SimHdCpsUnit, AdaptiveTdfMovesFromInitial)
{
    Graph g = makePaperInput("usa", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configSw();
    config.sampleInterval = 50; // plenty of decisions on a small run
    SimHdCps design(config, "adaptive");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_NE(design.currentTdf(), config.tdf.initial);
}

TEST(SimHdCpsUnit, BagCountersConsistent)
{
    Graph g = makePaperInput("cage", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimHdCps design(SimHdCps::configSw(), "bags");
    SimResult r = simulate(design, *w, cores8(), 1);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(design.bagsCreated(), r.total.bagsCreated);
    EXPECT_GE(r.total.tasksInBags, 2 * r.total.bagsCreated);
}

TEST(SimHdCpsUnit, HighWaterWithinCapacity)
{
    Graph g = makePaperInput("cage", 1, 3);
    auto w = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configHw();
    SimHdCps design(config, "hw");
    simulate(design, *w, cores8(), 1);
    EXPECT_LE(design.hrqHighWater(), config.hrqEntries);
    EXPECT_LE(design.hpqHighWater(), config.hpqEntries);
}

TEST(SimHdCpsUnit, HpqOnlyConfigVerifies)
{
    // The fourth point of the 2x2 hardware matrix: hPQ without hRQ.
    Graph g = makeRoadGrid(10, 10, {.seed = 6});
    auto w = makeWorkload("sssp", g, 0);
    SimResult r = simulate("hdcps-hpq", *w, cores8(), 1);
    EXPECT_TRUE(r.verified) << r.verifyError;
    // No hRQ => no hardware task messages on the mesh from this design
    // (coherence traffic is charged inside the cache model instead).
    SimResult hw = simulate("hdcps-hw", *w, cores8(), 1);
    EXPECT_GT(hw.noc.messages, r.noc.messages);
}

TEST(SimDesignsUnit, MultiqueueListedAndConstructible)
{
    size_t count = 0;
    const char *const *names = designNames(count);
    bool found = false;
    for (size_t i = 0; i < count; ++i)
        found |= std::string(names[i]) == "multiqueue";
    EXPECT_TRUE(found);
    EXPECT_STREQ(makeDesign("multiqueue")->name(), "multiqueue");
}

TEST(SimDesignsUnit, UnknownDesignIsFatal)
{
    EXPECT_EXIT(makeDesign("bogus"), testing::ExitedWithCode(1),
                "unknown design");
}

} // namespace
} // namespace hdcps
