/**
 * @file
 * Stress and failure-injection tests: oversubscribed executors,
 * adversarial scheduler churn, tiny queue capacities, randomized task
 * trees, and property checks on the simulator's bounded-queueing
 * models. These guard the invariants the calibrated benchmarks rely
 * on under conditions the happy-path tests never reach.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/verifying_scheduler.h"
#include "graph/generators.h"
#include "runtime/executor.h"
#include "sim/noc.h"
#include "simsched/common.h"
#include "simsched/runner.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/straggler.h"

namespace hdcps {
namespace {

// ------------------------------------------------- threaded stress

/** Random task tree: every task spawns 0-4 children up to a budget. */
ProcessFn
randomTree(std::atomic<int64_t> &budget)
{
    return [&budget](unsigned tid, const Task &task,
                     std::vector<Task> &children) {
        Rng rng(task.node * 2654435761u + task.priority + tid);
        unsigned fanout = static_cast<unsigned>(rng.below(5));
        for (unsigned i = 0; i < fanout; ++i) {
            if (budget.fetch_sub(1, std::memory_order_relaxed) <= 0)
                return;
            children.push_back(Task{task.priority + rng.below(3),
                                    static_cast<uint32_t>(rng.next()),
                                    0});
        }
    };
}

TEST(Stress, OversubscribedExecutorTerminates)
{
    // 8 threads on however few host cores exist: forces heavy
    // preemption inside scheduler critical sections.
    constexpr unsigned threads = 8;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    std::atomic<int64_t> budget{20000};
    RunOptions options;
    options.numThreads = threads;
    RunResult result =
        run(sched, {Task{0, 1, 0}}, randomTree(budget), options);
    EXPECT_GE(result.total.tasksProcessed, 1u);
    EXPECT_LE(result.total.tasksProcessed, 20002u);
}

TEST(Stress, TinyReceiveQueueForcesOverflowYetConserves)
{
    HdCpsConfig config = HdCpsScheduler::configSw();
    config.rqCapacity = 2;
    config.sampleInterval = 7;
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, config);
    std::atomic<int64_t> budget{30000};
    RunOptions options;
    options.numThreads = threads;
    RunResult result =
        run(sched, {Task{0, 1, 0}}, randomTree(budget), options);
    EXPECT_GT(result.total.tasksProcessed, 0u);
    // The overflow path must have been exercised by capacity 2.
    EXPECT_GT(sched.overflowPushes(), 0u);
}

TEST(Stress, ManySmallRunsReuseScheduler)
{
    // Scheduler-per-run construction/teardown under thread churn.
    for (int round = 0; round < 20; ++round) {
        PmodScheduler sched(3);
        std::atomic<int64_t> budget{500};
        RunOptions options;
        options.numThreads = 3;
        RunResult result = run(sched, {Task{0, uint32_t(round), 0}},
                               randomTree(budget), options);
        ASSERT_GE(result.total.tasksProcessed, 1u);
    }
}

TEST(Stress, WorkloadRunsTwiceAfterReset)
{
    Graph g = makeRoadGrid(12, 12, {.seed = 5});
    auto workload = makeWorkload("sssp", g, 0);
    for (int round = 0; round < 2; ++round) {
        workload->reset();
        ReldScheduler sched(2, uint64_t(round) + 1);
        RunOptions options;
        options.numThreads = 2;
        run(sched, workload->initialTasks(),
            workloadProcessFn(*workload), options);
        std::string why;
        ASSERT_TRUE(workload->verify(&why)) << why;
    }
}

TEST(Stress, MstHeavyContention)
{
    // Dense graph + many threads: exercises the merge retry and
    // global-mutex escalation paths.
    Graph g = makeUniformRandom(300, 4000, {.seed = 11});
    auto workload = makeWorkload("mst", g, 0);
    constexpr unsigned threads = 6;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSrq());
    RunOptions options;
    options.numThreads = threads;
    run(sched, workload->initialTasks(), workloadProcessFn(*workload),
        options);
    std::string why;
    ASSERT_TRUE(workload->verify(&why)) << why;
}

// ----------------------------------------------- simulator properties

TEST(SimProperties, NocContentionIsBounded)
{
    SimConfig config;
    config.numCores = 16;
    config.meshWidth = 4;
    NocMesh noc(config);
    // Hammer one link from far-future and past callers alternately;
    // the wait each caller experiences must respect the cap.
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        Cycle depart = rng.below(1000000);
        Cycle arrival = noc.transfer(0, 1, 64 * 16, depart);
        Cycle pure = noc.uncontendedLatency(0, 1, 64 * 16);
        ASSERT_LE(arrival, depart + pure + NocMesh::maxLinkQueue);
        ASSERT_GE(arrival, depart + pure);
    }
}

TEST(SimProperties, SerialResourceWaitIsBounded)
{
    SerialResource r;
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        Cycle earliest = rng.below(1000000);
        Cycle cost = 1 + rng.below(100);
        Cycle done = r.acquire(earliest, cost);
        ASSERT_GE(done, earliest + cost);
        ASSERT_LE(done, earliest + SerialResource::maxWait + cost);
    }
}

class SeedSweep : public testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, AllDesignsVerifyAcrossSeeds)
{
    SimConfig config;
    config.numCores = 8;
    config.meshWidth = 4;
    Graph g = makeRoadGrid(10, 10, {.seed = GetParam()});
    auto workload = makeWorkload("sssp", g, 0);
    for (const char *design :
         {"reld", "pmod", "hdcps-sw", "hdcps-hw", "swarm"}) {
        SimResult r = simulate(design, *workload, config, GetParam());
        ASSERT_TRUE(r.verified)
            << design << " seed " << GetParam() << ": "
            << r.verifyError;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(2, 3, 5, 8, 13, 21, 34));

class CoreCountSweep : public testing::TestWithParam<unsigned>
{
};

TEST_P(CoreCountSweep, HdCpsHwVerifiesAtAnyCoreCount)
{
    unsigned cores = GetParam();
    SimConfig config;
    config.numCores = cores;
    config.meshWidth = 1;
    for (unsigned w = 1; w <= cores; ++w) {
        if (cores % w == 0 && w * w <= cores)
            config.meshWidth = cores / w;
    }
    Graph g = makeRoadGrid(10, 10, {.seed = 2});
    auto workload = makeWorkload("bfs", g, 0);
    SimResult r = simulate("hdcps-hw", *workload, config, 1);
    ASSERT_TRUE(r.verified) << cores << " cores: " << r.verifyError;
    EXPECT_GT(r.completionCycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep,
                         testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(SimProperties, MoreCoresNeverCatastrophicallyWorse)
{
    // Weak scaling sanity: 16 cores must beat 1 core by a real margin
    // on a parallel-friendly input.
    Graph g = makePaperInput("cage", 1, 3);
    auto workload = makeWorkload("bfs", g, 0);
    SimConfig one;
    one.numCores = 1;
    one.meshWidth = 1;
    SimConfig sixteen;
    sixteen.numCores = 16;
    sixteen.meshWidth = 4;
    Cycle c1 = simulate("hdcps-hw", *workload, one, 1).completionCycles;
    Cycle c16 =
        simulate("hdcps-hw", *workload, sixteen, 1).completionCycles;
    EXPECT_LT(c16 * 2, c1); // at least 2x from 16 cores
}

// ------------------------------- failure semantics and the watchdog

/** Steady binary tree: every task spawns two children until the
 *  budget runs out, so the frontier cannot die off randomly. */
ProcessFn
steadyTree(std::atomic<int64_t> &budget)
{
    return [&budget](unsigned, const Task &task,
                     std::vector<Task> &children) {
        for (uint32_t i = 0; i < 2; ++i) {
            if (budget.fetch_sub(1, std::memory_order_relaxed) <= 0)
                return;
            children.push_back(
                Task{task.priority + 1,
                     static_cast<uint32_t>(mix64(task.node + i + 1)), 0});
        }
    };
}

TEST(FailureSemantics, ThrowingProcessFnFailsTheRunGracefully)
{
    // The PR's acceptance drill: a ProcessFn that throws mid-run must
    // yield a failed RunResult — no std::terminate, no hang, every
    // thread joined (implied by run() returning at all).
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    std::atomic<int64_t> budget{1000000};
    std::atomic<uint64_t> processed{0};
    ProcessFn tree = steadyTree(budget);
    ProcessFn throwing = [&](unsigned tid, const Task &task,
                             std::vector<Task> &children) {
        if (processed.fetch_add(1, std::memory_order_relaxed) == 100)
            throw std::runtime_error("injected failure at task 100");
        tree(tid, task, children);
    };
    RunOptions options;
    options.numThreads = threads;
    RunResult result = run(sched, {Task{0, 1, 0}}, throwing, options);
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("injected failure at task 100"),
              std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("ProcessFn threw"), std::string::npos)
        << result.error;
}

TEST(FailureSemantics, ProcessThrowFaultSiteFailsTheRun)
{
    // Same contract, driven through the fault site instead of a custom
    // ProcessFn — the path the CLI's --fault-spec exercises.
    ScopedFaultInjection faults;
    faults->arm(faultsite::ExecProcessThrow, FaultMode::OneShot, 50);
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    std::atomic<int64_t> budget{1000000};
    RunOptions options;
    options.numThreads = threads;
    RunResult result =
        run(sched, {Task{0, 1, 0}}, steadyTree(budget), options);
    EXPECT_TRUE(result.failed);
    EXPECT_NE(result.error.find("exec.process.throw"), std::string::npos)
        << result.error;
    EXPECT_EQ(faults->fireCount(faultsite::ExecProcessThrow), 1u);
}

TEST(FailureSemantics, SpuriousPopFailuresOnlySlowTheRun)
{
    // exec.pop.fail misfires leave the task queued; the run must still
    // complete and process the whole budget.
    ScopedFaultInjection faults(5);
    faults->arm(faultsite::ExecPopFail, FaultMode::Probability, 0.3);
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    std::atomic<int64_t> budget{5000};
    RunOptions options;
    options.numThreads = threads;
    RunResult result =
        run(sched, {Task{0, 1, 0}}, steadyTree(budget), options);
    EXPECT_TRUE(result.ok()) << result.error;
    EXPECT_GT(faults->fireCount(faultsite::ExecPopFail), 0u);
    EXPECT_LE(budget.load(), 0);
}

TEST(FailureSemantics, SsspCorrectUnderForcedSrqFull)
{
    // The PR's second acceptance drill: with *every* remote push
    // reporting sRQ-full (all transfer through the locked overflow
    // queue), SSSP must still process each task exactly once and land
    // on the same answer as the fault-free run — both are checked
    // against the same sequential reference by verify().
    Graph g = makeRoadGrid(12, 12, {.seed = 51});
    auto workload = makeWorkload("sssp", g, 0);
    constexpr unsigned threads = 4;

    workload->reset();
    {
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.fixedTdf = 100;
        HdCpsScheduler sched(threads, config);
        RunOptions options;
        options.numThreads = threads;
        RunResult r = run(sched, workload->initialTasks(),
                          workloadProcessFn(*workload), options);
        ASSERT_TRUE(r.ok()) << r.error;
        std::string why;
        ASSERT_TRUE(workload->verify(&why)) << "fault-free: " << why;
        EXPECT_EQ(sched.overflowPushes(), 0u);
    }

    workload->reset();
    {
        ScopedFaultInjection faults;
        faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 1);
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.fixedTdf = 100;
        HdCpsScheduler sched(threads, config);
        RunOptions options;
        options.numThreads = threads;
        options.watchdogMs = 10000; // the spill path must not stall
        RunResult r = run(sched, workload->initialTasks(),
                          workloadProcessFn(*workload), options);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_GT(sched.overflowPushes(), 0u);
        std::string why;
        ASSERT_TRUE(workload->verify(&why)) << "forced spill: " << why;
    }
}

/** Swallows every push and never returns work: the canonical stall. */
class BlackholeScheduler : public Scheduler
{
  public:
    explicit BlackholeScheduler(unsigned n) : Scheduler(n) {}

    void
    push(unsigned, const Task &) override
    {
        swallowed_.fetch_add(1, std::memory_order_relaxed);
    }

    bool tryPop(unsigned, Task &) override { return false; }
    const char *name() const override { return "blackhole"; }

    size_t
    sizeApprox() const override
    {
        return swallowed_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> swallowed_{0};
};

TEST(Watchdog, FiresOnStalledRunWithDiagnostic)
{
    constexpr unsigned threads = 3;
    BlackholeScheduler sched(threads);
    RunOptions options;
    options.numThreads = threads;
    options.watchdogMs = 50;
    std::atomic<int64_t> budget{100};
    RunResult result =
        run(sched, {Task{0, 1, 0}}, steadyTree(budget), options);
    EXPECT_TRUE(result.failed);
    EXPECT_NE(result.error.find("watchdog"), std::string::npos)
        << result.error;
    // The diagnostic names the scheduler, its buffered-task estimate,
    // and the per-worker pop counts.
    EXPECT_NE(result.error.find("blackhole"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("pops per worker"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("w0=0"), std::string::npos)
        << result.error;
    // Workers that never popped report their age since run start, so a
    // straggler is identifiable from the dump alone.
    EXPECT_NE(result.error.find("no pops"), std::string::npos)
        << result.error;
    EXPECT_NE(result.error.find("ms since start"), std::string::npos)
        << result.error;
}

TEST(Watchdog, QuietOnHealthyRun)
{
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    std::atomic<int64_t> budget{20000};
    RunOptions options;
    options.numThreads = threads;
    options.watchdogMs = 2000;
    RunResult result =
        run(sched, {Task{0, 1, 0}}, steadyTree(budget), options);
    EXPECT_TRUE(result.ok()) << result.error;
    EXPECT_LE(budget.load(), 0);
}

// ----------------------------------- straggler resilience (tentpole)

/**
 * The PR's acceptance pair: the same SSSP run with one worker paused
 * far longer than the progress windows. Without reclamation the tasks
 * parked in the straggler's sRQ strand the run — the watchdog is the
 * only thing standing between that and an infinite hang. With
 * reclamation armed, idle peers drain the straggler's queues and the
 * run completes correctly.
 */
TEST(StragglerResilience, PausedWorkerStallsRunWithoutReclamation)
{
    Graph g = makeRoadGrid(20, 20, {.seed = 23});
    auto workload = makeWorkload("sssp", g, 0);
    constexpr unsigned threads = 4;

    // Worker 1 pauses at its 30th loop iteration for 900 ms: longer
    // than several watchdog windows, so the stall is unambiguous.
    ScopedStragglerInjection stragglers(threads, 1);
    stragglers->add(StragglerInjector::PauseEvent{1, 30, 900});

    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100; // every push crosses workers via the sRQs
    HdCpsScheduler sched(threads, config);
    RunOptions options;
    options.numThreads = threads;
    options.watchdogMs = 150;
    RunResult r = run(sched, workload->initialTasks(),
                      workloadProcessFn(*workload), options);
    ASSERT_TRUE(r.failed)
        << "expected the stranded-sRQ stall to trip the watchdog";
    EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
    EXPECT_GE(stragglers->pausesInjected(), 1u);
    EXPECT_EQ(sched.reclaimedTasks(), 0u);
}

TEST(StragglerResilience, ReclamationRidesOutThePausedWorker)
{
    Graph g = makeRoadGrid(20, 20, {.seed = 23});
    auto workload = makeWorkload("sssp", g, 0);
    constexpr unsigned threads = 4;

    ScopedStragglerInjection stragglers(threads, 1);
    stragglers->add(StragglerInjector::PauseEvent{1, 30, 900});

    HdCpsConfig config = HdCpsScheduler::configSrq();
    config.fixedTdf = 100;
    HdCpsScheduler sched(threads, config);
    VerifyingScheduler verified(sched);
    RunOptions options;
    options.numThreads = threads;
    options.watchdogMs = 2000; // only a genuine hang may trip it now
    options.reclaimAfterMs = 25;
    RunResult r = run(verified, workload->initialTasks(),
                      workloadProcessFn(*workload), options);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GE(stragglers->pausesInjected(), 1u);
    EXPECT_GT(sched.reclaimedTasks(), 0u)
        << "peers should have drained the paused worker's queues";

    std::string why;
    EXPECT_TRUE(verified.checkComplete(false, &why)) << why;
    ASSERT_TRUE(workload->verify(&why)) << why;
}

// ------------------------------ distributed termination (chaos soak)

/**
 * The executor's two-pass distributed quiescence check replaces the
 * old global pending counter, so the property worth soaking is the one
 * a broken check would violate: under spurious pop failures plus a
 * paused worker (reclamation armed), every run must (a) terminate at
 * all, (b) terminate only after every created task was processed
 * exactly once, and (c) never double-count a task when the frontier
 * drains and refills around the idle checks.
 */
TEST(DistributedTermination, ChaosSoakNeverHangsOrTerminatesEarly)
{
    constexpr unsigned threads = 4;
    for (uint64_t seed : {uint64_t(3), uint64_t(11), uint64_t(29)}) {
        ScopedFaultInjection faults(seed);
        faults->arm(faultsite::ExecPopFail, FaultMode::Probability, 0.2);
        faults->arm(faultsite::SrqPopFail, FaultMode::Probability, 0.1);
        ScopedStragglerInjection stragglers(threads, seed);
        stragglers->add(StragglerInjector::PauseEvent{2, 20, 120});

        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.fixedTdf = 100; // quiescence must see in-flight transfers
        config.seed = seed;
        HdCpsScheduler sched(threads, config);
        VerifyingScheduler verified(sched);
        std::atomic<int64_t> budget{30000};
        std::atomic<uint64_t> processed{0};
        ProcessFn tree = steadyTree(budget);
        ProcessFn counted = [&](unsigned tid, const Task &task,
                                std::vector<Task> &children) {
            processed.fetch_add(1, std::memory_order_relaxed);
            tree(tid, task, children);
        };
        RunOptions options;
        options.numThreads = threads;
        options.watchdogMs = 60000; // (a): a hang fails loudly, not
                                    // by timing out the whole suite
        options.reclaimAfterMs = 20;
        RunResult r = run(verified, {Task{0, 1, 0}}, counted, options);
        ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.error;
        EXPECT_LE(budget.load(), 0) << "seed " << seed;
        // (b) + (c): the executor's own processed total, the ProcessFn
        // call count, and the scheduler-level push/pop ledger must all
        // agree — early termination loses tasks, double termination
        // (two workers both concluding "quiescent" while work remains)
        // double-processes them.
        EXPECT_EQ(processed.load(), r.total.tasksProcessed)
            << "seed " << seed;
        std::string why;
        EXPECT_TRUE(verified.checkComplete(false, &why))
            << "seed " << seed << ": " << why;
    }
}

TEST(DistributedTermination, EmptyInitialRunTerminatesImmediately)
{
    // Zero created, zero completed: the very first quiescence check
    // must pass on every worker without anyone processing anything.
    constexpr unsigned threads = 4;
    HdCpsScheduler sched(threads, HdCpsScheduler::configSw());
    ProcessFn noop = [](unsigned, const Task &, std::vector<Task> &) {};
    RunOptions options;
    options.numThreads = threads;
    options.watchdogMs = 10000;
    RunResult r = run(sched, {}, noop, options);
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.total.tasksProcessed, 0u);
}

TEST(SimProperties, DrainAlwaysCompletes)
{
    // Pathological config: 1-entry queues, 100% distribution, tiny
    // sample interval — termination and verification must still hold.
    Graph g = makeRoadGrid(8, 8, {.seed = 9});
    auto workload = makeWorkload("sssp", g, 0);
    SimHdCpsConfig config = SimHdCps::configHw();
    config.hrqEntries = 1;
    config.hpqEntries = 1;
    config.tdfMode = SimHdCpsConfig::TdfMode::Fixed;
    config.fixedTdf = 100;
    config.sampleInterval = 1;
    SimConfig machine;
    machine.numCores = 16;
    machine.meshWidth = 4;
    auto design = makeHdCpsDesign(config, "pathological");
    SimResult r = simulate(*design, *workload, machine, 1);
    ASSERT_TRUE(r.verified) << r.verifyError;
}

} // namespace
} // namespace hdcps
