/**
 * @file
 * Unit tests for the support and stats modules: RNG, bit utilities,
 * padded wrappers, breakdown accounting, tables, and summaries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stats/breakdown.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/compiler.h"
#include "support/rng.h"
#include "support/fault.h"
#include "support/spsc_ring.h"
#include "support/straggler.h"
#include "support/timer.h"
#include "support/topology.h"

namespace hdcps {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng rng(7);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ReseedRestoresSequence)
{
    Rng rng(123);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(rng.next());
    rng.reseed(123);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.next(), first[i]);
}

TEST(Mix64, IsDeterministicAndSpread)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
}

TEST(Compiler, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

TEST(Compiler, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
}

TEST(Compiler, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(64), 6u);
}

TEST(Compiler, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(64), 6u);
    EXPECT_EQ(log2Ceil(65), 7u);
}

TEST(Compiler, PaddedFillsCacheLine)
{
    EXPECT_GE(sizeof(Padded<int>), cacheLineBytes);
    EXPECT_EQ(alignof(Padded<int>), cacheLineBytes);
}

TEST(Timer, StopwatchAccumulates)
{
    Stopwatch sw;
    sw.start();
    sw.stop();
    uint64_t once = sw.elapsedNs();
    sw.start();
    sw.stop();
    EXPECT_GE(sw.elapsedNs(), once);
    sw.reset();
    EXPECT_EQ(sw.elapsedNs(), 0u);
}

TEST(Timer, ScopedTimerAddsToSink)
{
    uint64_t sink = 0;
    {
        ScopedTimer t(sink);
    }
    uint64_t first = sink;
    {
        ScopedTimer t(sink);
    }
    EXPECT_GE(sink, first);
}

TEST(Breakdown, IndexingAndTotal)
{
    Breakdown b;
    b[Component::Enqueue] = 10;
    b[Component::Dequeue] = 20;
    b[Component::Compute] = 30;
    b[Component::Comm] = 40;
    EXPECT_EQ(b.total(), 100u);
    EXPECT_DOUBLE_EQ(b.fraction(Component::Compute), 0.3);
}

TEST(Breakdown, FractionOfEmptyIsZero)
{
    Breakdown b;
    EXPECT_DOUBLE_EQ(b.fraction(Component::Comm), 0.0);
}

TEST(Breakdown, MergeAccumulatesEverything)
{
    Breakdown a;
    a[Component::Enqueue] = 5;
    a.tasksProcessed = 3;
    a.bagsCreated = 1;
    Breakdown b;
    b[Component::Enqueue] = 7;
    b.tasksProcessed = 4;
    b.aborts = 2;
    a += b;
    EXPECT_EQ(a[Component::Enqueue], 12u);
    EXPECT_EQ(a.tasksProcessed, 7u);
    EXPECT_EQ(a.bagsCreated, 1u);
    EXPECT_EQ(a.aborts, 2u);
}

TEST(Breakdown, ComponentNames)
{
    EXPECT_STREQ(componentName(Component::Enqueue), "enqueue");
    EXPECT_STREQ(componentName(Component::Dequeue), "dequeue");
    EXPECT_STREQ(componentName(Component::Compute), "compute");
    EXPECT_STREQ(componentName(Component::Comm), "comm");
}

TEST(Summary, GeomeanOfEqualValues)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Summary, GeomeanMixed)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(Summary, GeomeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Summary, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Summary, HistogramBasics)
{
    Histogram h(10, 1);
    for (uint64_t v : {0ull, 1ull, 1ull, 5ull, 100ull})
        h.record(v);
    EXPECT_EQ(h.totalSamples(), 5u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u); // overflow bucket
    EXPECT_EQ(h.maxSample(), 100u);
}

TEST(Summary, HistogramPercentile)
{
    Histogram h(100, 1);
    for (uint64_t v = 0; v < 100; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(0.5), 49u);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(Table, AlignedTextOutput)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(uint64_t(42));
    t.row().cell("b").cell(3.14159, 2);
    std::ostringstream os;
    t.printText(os, "demo");
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_EQ(t.at(0, 1), "42");
}

TEST(Table, CsvEscaping)
{
    Table t({"a", "b"});
    t.row().cell("x,y").cell("plain");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, AtThrowsOutOfRange)
{
    Table t({"a"});
    EXPECT_THROW(t.at(0, 0), std::out_of_range);
}

TEST(SpscRing, FifoOrder)
{
    SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    int out;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(SpscRing, FullRejectsPush)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99));
    int out;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_TRUE(ring.tryPush(99));
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    SpscRing<int> ring(64);
    constexpr int count = 20000;
    std::thread producer([&] {
        for (int i = 0; i < count;) {
            if (ring.tryPush(i))
                ++i;
        }
    });
    long long sum = 0;
    int received = 0;
    while (received < count) {
        int v;
        if (ring.tryPop(v)) {
            sum += v;
            ++received;
        }
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(count) * (count - 1) / 2);
}

TEST(Fault, InactiveHelpersAreNoOps)
{
    ASSERT_EQ(FaultRegistry::active(), nullptr);
    EXPECT_FALSE(faultFires(faultsite::SrqPushFull));
    EXPECT_EQ(faultAmount(faultsite::SimNocDelay), 0u);
    faultSleep(faultsite::DriftPublishDelay); // must be a no-op
}

TEST(Fault, UnarmedSiteNeverFires)
{
    ScopedFaultInjection faults;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(faultFires(faultsite::SrqPushFull));
    EXPECT_EQ(faults->invocations(faultsite::SrqPushFull), 0u);
    EXPECT_EQ(faults->armedCount(), 0u);
}

TEST(Fault, ScopedInstallUninstalls)
{
    EXPECT_EQ(FaultRegistry::active(), nullptr);
    {
        ScopedFaultInjection faults;
        EXPECT_EQ(FaultRegistry::active(), &faults.registry());
    }
    EXPECT_EQ(FaultRegistry::active(), nullptr);
}

TEST(Fault, EveryNthFiresOnExactMultiples)
{
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 3);
    int fired = 0;
    for (int i = 1; i <= 30; ++i) {
        bool f = faultFires(faultsite::SrqPushFull);
        EXPECT_EQ(f, i % 3 == 0) << "invocation " << i;
        fired += f;
    }
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(faults->invocations(faultsite::SrqPushFull), 30u);
    EXPECT_EQ(faults->fireCount(faultsite::SrqPushFull), 10u);
}

TEST(Fault, OneShotFiresOnTheNthInvocationOnly)
{
    ScopedFaultInjection faults;
    faults->arm(faultsite::ExecProcessThrow, FaultMode::OneShot, 5);
    for (int i = 1; i <= 20; ++i) {
        EXPECT_EQ(faultFires(faultsite::ExecProcessThrow), i == 5)
            << "invocation " << i;
    }
    EXPECT_EQ(faults->fireCount(faultsite::ExecProcessThrow), 1u);
}

TEST(Fault, ProbabilityIsDeterministicPerSeed)
{
    auto sample = [](uint64_t seed) {
        ScopedFaultInjection faults(seed);
        faults->arm(faultsite::SrqPopFail, FaultMode::Probability, 0.3);
        std::vector<bool> out;
        for (int i = 0; i < 400; ++i)
            out.push_back(faultFires(faultsite::SrqPopFail));
        return out;
    };
    std::vector<bool> a = sample(77);
    EXPECT_EQ(a, sample(77));
    EXPECT_NE(a, sample(78));
    int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 60);  // ~120 expected; loose 3-sigma-ish bounds
    EXPECT_LT(fired, 180);
}

TEST(Fault, ProbabilityExtremes)
{
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPopFail, FaultMode::Probability, 0.0);
    faults->arm(faultsite::SrqPushFull, FaultMode::Probability, 1.0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(faultFires(faultsite::SrqPopFail));
        EXPECT_TRUE(faultFires(faultsite::SrqPushFull));
    }
}

TEST(Fault, DelayModeReportsAmountEveryTime)
{
    ScopedFaultInjection faults;
    faults->arm(faultsite::SimNocDelay, FaultMode::Delay, 7);
    EXPECT_EQ(faultAmount(faultsite::SimNocDelay), 7u);
    EXPECT_EQ(faultAmount(faultsite::SimNocDelay), 7u);
    EXPECT_EQ(faults->fireCount(faultsite::SimNocDelay), 2u);
}

TEST(Fault, RearmResetsCounters)
{
    ScopedFaultInjection faults;
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 1);
    EXPECT_TRUE(faultFires(faultsite::SrqPushFull));
    faults->arm(faultsite::SrqPushFull, FaultMode::EveryNth, 2);
    EXPECT_EQ(faults->invocations(faultsite::SrqPushFull), 0u);
    EXPECT_FALSE(faultFires(faultsite::SrqPushFull)); // 1st of nth:2
    EXPECT_TRUE(faultFires(faultsite::SrqPushFull));
    EXPECT_EQ(faults->armedCount(), 1u); // re-armed, not duplicated
}

TEST(Fault, ParseSpecArmsSites)
{
    ScopedFaultInjection faults;
    std::string error;
    ASSERT_TRUE(faults->parseSpec("srq.push.full:nth:2,"
                                  "sim.noc.delay:delay:100,"
                                  "exec.process.throw:once",
                                  &error))
        << error;
    EXPECT_EQ(faults->armedCount(), 3u);
    EXPECT_FALSE(faultFires(faultsite::SrqPushFull));
    EXPECT_TRUE(faultFires(faultsite::SrqPushFull));
    EXPECT_EQ(faultAmount(faultsite::SimNocDelay), 100u);
    EXPECT_TRUE(faultFires(faultsite::ExecProcessThrow)); // once -> N=1
    EXPECT_FALSE(faultFires(faultsite::ExecProcessThrow));
}

TEST(Fault, ParseSpecRejectsBadInput)
{
    ScopedFaultInjection faults;
    std::string error;
    EXPECT_FALSE(faults->parseSpec("nocolon", &error));
    EXPECT_FALSE(faults->parseSpec("site:wat:1", &error));
    EXPECT_NE(error.find("unknown mode"), std::string::npos) << error;
    EXPECT_FALSE(faults->parseSpec("site:nth", &error));
    EXPECT_FALSE(faults->parseSpec("site:prob:1.5", &error));
    EXPECT_FALSE(faults->parseSpec("site:nth:abc", &error));
    EXPECT_FALSE(faults->parseSpec(":nth:1", &error));
}

TEST(Fault, SiteCatalogNamesAreKnown)
{
    size_t count = 0;
    const FaultSiteInfo *sites = faultSiteCatalog(count);
    ASSERT_GE(count, 9u);
    for (size_t i = 0; i < count; ++i)
        EXPECT_TRUE(faultSiteKnown(sites[i].name)) << sites[i].name;
    EXPECT_FALSE(faultSiteKnown("no.such.site"));
}

TEST(Fault, ParseSpecRejectsDuplicateSites)
{
    // A repeated site would silently re-arm (last entry wins), which
    // turns a soak-script typo into a misleading experiment — reject
    // it and name the offender.
    ScopedFaultInjection faults;
    std::string error;
    EXPECT_FALSE(faults->parseSpec(
        "srq.push.full:nth:2,exec.pop.fail:prob:0.5,srq.push.full:once:9",
        &error));
    EXPECT_NE(error.find("duplicate site"), std::string::npos) << error;
    EXPECT_NE(error.find("srq.push.full"), std::string::npos) << error;
    // Distinct sites still parse.
    EXPECT_TRUE(faults->parseSpec(
        "srq.push.full:nth:2,exec.pop.fail:prob:0.5", &error))
        << error;
}

// ----------------------------------------------- straggler injection

TEST(Straggler, InactivePausePointIsANoOp)
{
    ASSERT_EQ(StragglerInjector::active(), nullptr);
    stragglerPausePoint(0); // must not crash or block
    stragglerPausePoint(99);
}

TEST(Straggler, ScheduledPauseFiresAtItsCheck)
{
    StragglerInjector injector(2, 7);
    injector.add(StragglerInjector::PauseEvent{1, 3, 1});
    EXPECT_EQ(injector.pausesInjected(), 0u);
    injector.pausePoint(1);
    injector.pausePoint(1);
    EXPECT_EQ(injector.pausesInjected(), 0u); // not yet due
    injector.pausePoint(1);
    EXPECT_EQ(injector.pausesInjected(), 1u);
    EXPECT_GE(injector.pausedMsTotal(), 1u);
    // Worker 0 never pauses: events are per-worker.
    for (int i = 0; i < 10; ++i)
        injector.pausePoint(0);
    EXPECT_EQ(injector.pausesInjected(), 1u);
    EXPECT_EQ(injector.checks(0), 10u);
    EXPECT_EQ(injector.checks(1), 3u);
}

TEST(Straggler, RandomPausesAreDeterministicPerSeed)
{
    auto countPauses = [](uint64_t seed) {
        StragglerInjector injector(2, seed);
        injector.randomPauses(0.05, 1);
        for (int i = 0; i < 200; ++i) {
            injector.pausePoint(0);
            injector.pausePoint(1);
        }
        return injector.pausesInjected();
    };
    EXPECT_EQ(countPauses(42), countPauses(42));
    EXPECT_GT(countPauses(42), 0u);
}

TEST(Straggler, ParseSpecAcceptsEventsAndRand)
{
    StragglerInjector injector(4, 1);
    std::string error;
    ASSERT_TRUE(injector.parseSpec("2:100:250,rand:0.01:5", &error))
        << error;
    // Worker 2 pauses at its 100th check.
    for (int i = 0; i < 99; ++i)
        injector.pausePoint(2);
    uint64_t before = injector.pausesInjected();
    injector.pausePoint(2);
    EXPECT_GE(injector.pausesInjected(), before + 1);
}

TEST(Straggler, ParseSpecRejectsBadInput)
{
    StragglerInjector injector(2, 1);
    std::string error;
    EXPECT_FALSE(injector.parseSpec("nocolons", &error));
    EXPECT_FALSE(injector.parseSpec("9:1:1", &error)); // worker range
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    EXPECT_FALSE(injector.parseSpec("0:0:5", &error)); // atCheck 1-based
    EXPECT_FALSE(injector.parseSpec("0:1:0", &error)); // pauseMs >= 1
    EXPECT_FALSE(injector.parseSpec("rand:1.5:10", &error));
    EXPECT_FALSE(injector.parseSpec("rand:0.5:0", &error));
    EXPECT_FALSE(injector.parseSpec("0:abc:1", &error));
}

TEST(Straggler, ScopedInstallUninstalls)
{
    ASSERT_EQ(StragglerInjector::active(), nullptr);
    {
        ScopedStragglerInjection scoped(2, 1);
        EXPECT_EQ(StragglerInjector::active(), &scoped.injector());
    }
    EXPECT_EQ(StragglerInjector::active(), nullptr);
}

// ------------------------------------------------------------ Topology

TEST(Topology, DefaultIsFlatSingleNode)
{
    Topology t;
    EXPECT_EQ(t.numNodes(), 1u);
    EXPECT_FALSE(t.canPin());
    EXPECT_TRUE(t.cpusOfNode(0).empty());
    EXPECT_EQ(t.describe(), "flat");
    for (unsigned tid = 0; tid < 5; ++tid)
        EXPECT_EQ(t.nodeOfWorker(tid, 5), 0u);
}

TEST(Topology, SyntheticPartitionsWorkersIntoContiguousBlocks)
{
    Topology t = Topology::synthetic(2, 4);
    EXPECT_EQ(t.numNodes(), 2u);
    EXPECT_EQ(t.coresOfNode(0), 4u);
    EXPECT_FALSE(t.canPin());
    EXPECT_EQ(t.describe(), "2x4 (synthetic)");
    // 8 workers on 2 nodes: even halves.
    for (unsigned tid = 0; tid < 8; ++tid)
        EXPECT_EQ(t.nodeOfWorker(tid, 8), tid < 4 ? 0u : 1u) << tid;
    // Uneven split: the low node takes the larger block.
    EXPECT_EQ(t.nodeOfWorker(0, 3), 0u);
    EXPECT_EQ(t.nodeOfWorker(1, 3), 0u);
    EXPECT_EQ(t.nodeOfWorker(2, 3), 1u);
    // Fewer workers than nodes: every worker still gets a valid node,
    // and the extremes land on distinct nodes.
    Topology wide = Topology::synthetic(4, 1);
    EXPECT_EQ(wide.nodeOfWorker(0, 2), 0u);
    EXPECT_EQ(wide.nodeOfWorker(1, 2), 2u);
}

TEST(Topology, SyntheticPinIsANoOp)
{
    Topology t = Topology::synthetic(2, 2);
    EXPECT_FALSE(t.pinThreadToNode(0));
    EXPECT_FALSE(t.pinThreadToNode(1));
}

TEST(Topology, ParseSpecAcceptsTheThreeForms)
{
    Topology t;
    std::string error;
    ASSERT_TRUE(Topology::parseSpec("", &t, &error));
    EXPECT_EQ(t.numNodes(), 1u);
    ASSERT_TRUE(Topology::parseSpec("flat", &t, &error));
    EXPECT_EQ(t.numNodes(), 1u);
    ASSERT_TRUE(Topology::parseSpec("2x4", &t, &error));
    EXPECT_EQ(t.numNodes(), 2u);
    EXPECT_EQ(t.coresOfNode(1), 4u);
    // "auto" must parse on any host; the result depends on the machine
    // (flat where sysfs is absent), so only invariants are asserted.
    ASSERT_TRUE(Topology::parseSpec("auto", &t, &error));
    EXPECT_GE(t.numNodes(), 1u);
}

TEST(Topology, ParseSpecRejectsMalformedSpecs)
{
    Topology t;
    std::string error;
    for (const char *bad :
         {"x", "2x", "x4", "2x-4", "ax4", "2x4x8", "0x4", "2x0",
          "65x65", "2 x 4", "auto2"}) {
        error.clear();
        EXPECT_FALSE(Topology::parseSpec(bad, &t, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Topology, ParseSpecTrimsSurroundingWhitespaceOnly)
{
    Topology t;
    std::string error;
    ASSERT_TRUE(Topology::parseSpec("  2x4\n", &t, &error));
    EXPECT_EQ(t.numNodes(), 2u);
    ASSERT_TRUE(Topology::parseSpec(" flat\t", &t, &error));
    EXPECT_EQ(t.numNodes(), 1u);
    ASSERT_TRUE(Topology::parseSpec(" \t\r\n", &t, &error));
    EXPECT_EQ(t.numNodes(), 1u); // all-whitespace == empty == flat
    // Inner whitespace is still malformed, not trimmed into validity.
    error.clear();
    EXPECT_FALSE(Topology::parseSpec("2 x 4", &t, &error));
    EXPECT_FALSE(error.empty());
}

TEST(Topology, ParseSpecNamesZeroDimensionErrors)
{
    Topology t;
    std::string error;
    EXPECT_FALSE(Topology::parseSpec("0x4", &t, &error));
    EXPECT_NE(error.find("at least 1 node"), std::string::npos)
        << error;
    error.clear();
    EXPECT_FALSE(Topology::parseSpec("4x0", &t, &error));
    EXPECT_NE(error.find("at least 1 node"), std::string::npos)
        << error;
}

TEST(Topology, ParseSpecGuardsDimensionOverflow)
{
    Topology t;
    std::string error;
    // 2^32 * 2^32 wraps a 64-bit product to exactly 0: the old
    // post-multiply range check waved it through and synthetic()
    // aborted on a zero-node topology.
    EXPECT_FALSE(
        Topology::parseSpec("4294967296x4294967296", &t, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
    // Overlong digit strings saturate strtoul at ULONG_MAX, whose
    // square wraps to 1 — also under the limit.
    error.clear();
    EXPECT_FALSE(Topology::parseSpec(
        "99999999999999999999x99999999999999999999", &t, &error));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(Topology, DetectReturnsAUsableLayoutOrFlat)
{
    // Host-dependent, so assert structure, not values: every node has
    // >= 1 CPU iff the topology claims pinnability, and worker mapping
    // stays in range.
    Topology t = Topology::detect();
    ASSERT_GE(t.numNodes(), 1u);
    for (unsigned n = 0; n < t.numNodes(); ++n) {
        if (t.canPin())
            EXPECT_FALSE(t.cpusOfNode(n).empty()) << n;
        else
            EXPECT_TRUE(t.cpusOfNode(n).empty()) << n;
    }
    for (unsigned tid = 0; tid < 16; ++tid) {
        EXPECT_LT(t.nodeOfWorker(tid, 16), t.numNodes()) << tid;
    }
}

} // namespace
} // namespace hdcps
