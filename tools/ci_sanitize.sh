#!/usr/bin/env bash
# Build and run the tier-1 test suite under the sanitizer presets.
#
# Usage: tools/ci_sanitize.sh [preset...]
#   (default: tsan asan-ubsan; see CMakePresets.json)
#
# The concurrency bugs this repo's scheduler can grow (racy drift
# reductions, non-atomic queue-pointer reads) are exactly the kind
# TSan catches and unit tests miss, so CI runs the whole suite under
# both instrumented builds. Any sanitizer report fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(tsan asan-ubsan)
fi

jobs=${HDCPS_CI_JOBS:-$(nproc)}

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

# Only the test binaries and the CLI (for cli_metrics_smoke) are
# needed: skipping the bench/example targets roughly halves each
# instrumented build.
targets=(hdcps_cli
         test_support test_graph test_pq test_core test_obs test_sched
         test_algos test_sim test_simdesigns test_stress test_simsched
         test_properties)

for preset in "${presets[@]}"; do
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$jobs" -- "${targets[@]}"
    echo "=== [$preset] ctest ==="
    ctest --preset "$preset" -j "$jobs"
    echo "=== [$preset] OK ==="
done
