#!/usr/bin/env bash
# Build and run the tier-1 test suite under the sanitizer presets.
#
# Usage: tools/ci_sanitize.sh [preset...]
#   (default: tsan asan-ubsan; see CMakePresets.json)
#
# The concurrency bugs this repo's scheduler can grow (racy drift
# reductions, non-atomic queue-pointer reads) are exactly the kind
# TSan catches and unit tests miss, so CI runs the whole suite under
# both instrumented builds. Any sanitizer report fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(tsan asan-ubsan)
fi

jobs=${HDCPS_CI_JOBS:-$(nproc)}

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

# Only the test binaries and the CLI (for cli_metrics_smoke) are
# needed: skipping the bench/example targets roughly halves each
# instrumented build.
targets=(hdcps_cli hdcps_soak bench_micro_queues
         test_support test_graph test_pq test_core test_obs test_sched
         test_conformance test_algos test_sim test_simdesigns
         test_stress test_simsched test_properties test_service)

# Fault-injection stress: re-run the failure-semantics, watchdog and
# fault-drill suites under the instrumented build (the injected error
# paths exercise unwinding and drain-stop code ctest already covers,
# but the CLI plumbing below does not run under ctest), then drive the
# CLI end to end with faults armed. A degraded-but-healthy spec must
# still succeed; an injected ProcessFn throw must fail the run with
# the graceful exit code 2, not a crash or a hang.
fault_stress() {
    local builddir=$1
    "$builddir"/tests/test_stress --gtest_filter='FailureSemantics.*:Watchdog.*'
    "$builddir"/tests/test_core --gtest_filter='FaultDrill.*'
    "$builddir"/tools/hdcps_cli --kernel sssp --input cage --design hdcps-sw \
        --mode threads --threads 4 --watchdog-ms 60000 --csv \
        --fault-spec 'srq.push.full:nth:3,exec.pop.fail:prob:0.05,srq.pop.fail:prob:0.05'
    local rc=0
    "$builddir"/tools/hdcps_cli --kernel sssp --input cage --design hdcps-sw \
        --mode threads --threads 4 --watchdog-ms 60000 --csv \
        --fault-spec 'exec.process.throw:once:100' || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "FAIL: injected ProcessFn throw exited $rc, want 2" >&2
        return 1
    fi
}

# Chaos soak: randomized kernel x scheduler x fault-spec x straggler
# scenarios, every scheduler wrapped in the invariant-checking
# VerifyingScheduler with the metrics single-writer checker armed, and
# diffed against the sequential oracle. The seed is fixed so CI
# replays the same scenario stream every time, and --budget-ms stops
# cleanly (still a pass) if the instrumented build is too slow to
# finish all runs inside roughly a minute. Any invariant violation —
# task loss or duplication, unsafe termination, a cross-thread metrics
# write, a non-injected failure — exits non-zero and fails the stage.
# A second sweep pins the software baselines: --designs round-robins
# them through the first runs, so each baseline sees chaos even when
# the general sweep's random draws cluster elsewhere.
chaos_soak() {
    local builddir=$1
    "$builddir"/tools/hdcps_soak --runs 24 --seed 7 --threads 4 \
        --budget-ms 60000
    "$builddir"/tools/hdcps_soak --runs 12 --seed 23 --threads 4 \
        --budget-ms 45000 \
        --designs obim,pmod,multiqueue,swminnow,reld,hdcps-mq
}

# Supervisor chaos: pinned-seed scenario stream where every post-
# round-robin run arms the worker supervisor and kills or wedges
# service workers mid-run (svc.worker.die / svc.worker.wedge, poison
# tasks riding along half the time). The soak exits nonzero — failing
# this stage — if a quarantined worker's tasks are lost, a worker loss
# is not healed by a replacement, a post-heal job cannot complete, or
# dead-letter accounting drifts from the injected poison count. The
# supervised CLI job-stream then replays the same drills through the
# end-to-end driver: a worker death plus poison tasks must still exit
# 0 (all jobs complete, poisoned work dead-lettered, oracle checks on
# every non-poisoned job).
supervisor_chaos() {
    local builddir=$1
    "$builddir"/tools/hdcps_soak --runs 10 --seed 41 --threads 4 \
        --budget-ms 60000 --supervisor-slice 1 --service-slice 0 \
        --designs hdcps-sw,swminnow,multiqueue
    "$builddir"/tools/hdcps_cli --kernel sssp --input cage \
        --design hdcps-sw --job-stream 8 --rate 1000 --threads 4 \
        --supervise --max-restarts 8 --dead-letter --job-retries 3 \
        --seed 5 --csv \
        --fault-spec 'svc.worker.die:once:200,svc.task.poison:nth:400'
}

# Fairness chaos: pinned-seed scenario stream where every post-
# round-robin run floods the service from a heavy-weight tenant while
# a weight-1 tenant, a rate-limited tenant, and a deprioritized job
# ride along. The soak exits nonzero — failing this stage — if the
# weight-1 tenant is starved (the flood fully drains before its first
# task runs), a quota rejection loses its typed reason, a preempted
# job's re-tagged incarnations break the per-job pop ledger, or the
# verifier's conservation check fails. The single-writer checker runs
# in abort mode so an overlapping metrics write dies with a stack
# trace at the racing store. The weighted CLI job-stream then drives
# the same policy end to end: three tenants at 4:2:1 weights must all
# complete their jobs and exit 0 with every oracle check passing.
fairness_chaos() {
    local builddir=$1
    "$builddir"/tools/hdcps_soak --runs 10 --seed 83 --threads 4 \
        --budget-ms 60000 --fairness-slice 1 --service-slice 0 \
        --supervisor-slice 0 --abort-on-writer-violation \
        --designs hdcps-sw,multiqueue,swminnow
    "$builddir"/tools/hdcps_cli --kernel sssp --input cage \
        --design multiqueue --job-stream 12 --rate 1000 --threads 4 \
        --tenants 3 --weights 4,2,1 --admit-cap 64 --seed 9 --csv
}

# Job-stream smoke: replay a bursty multi-tenant job stream through
# the ExecutorService with admission backpressure, retries, and an
# armed job-fault drill. Rejections are expected (capacity 4 under
# bursts of 8); anything but exit 0 — a lost task, an unverified
# completed job, a job failed by something other than its deadline —
# fails the stage.
service_stream_smoke() {
    local builddir=$1
    "$builddir"/tools/hdcps_cli --kernel bfs --input cage \
        --design multiqueue --job-stream 24 --arrivals burst \
        --burst 8 --rate 400 --threads 4 --admit-cap 4 \
        --job-retries 4 --csv --fault-spec 'svc.job.fail:nth:97'
}

# Bench smoke + perf self-gate: run the perf-gate microbenchmarks
# twice with a tiny iteration budget (sanitizer builds are slow by
# design, so this is a does-it-work-and-is-it-stable check, not a
# measurement), validate the JSON schema, then HARD-gate the rerun
# against the first run with bench_compare --min-ratio. The threshold
# (0.35) is far below real run-to-run noise for these budgets (see
# EXPERIMENTS.md "Perf-gate variance") so only a catastrophic
# regression — a benchmark collapsing to a fraction of its own
# same-build throughput, i.e. a livelock, a lock convoy, or a
# pathological slow path — trips it. Both artifacts are left under
# $builddir/artifacts/ so CI can upload them with the run.
bench_smoke() {
    local builddir=$1
    mkdir -p "$builddir/artifacts"
    HDCPS_BENCH_JSON_OUT="$builddir/artifacts/BENCH_micro.json" \
        "$builddir"/bench/bench_micro_queues \
        --benchmark_min_time=0.01 \
        --benchmark_filter='-BM_HdCpsPipelineSpawn'
    tools/bench_compare --validate "$builddir/artifacts/BENCH_micro.json"
    HDCPS_BENCH_JSON_OUT="$builddir/artifacts/BENCH_micro_rerun.json" \
        "$builddir"/bench/bench_micro_queues \
        --benchmark_min_time=0.01 \
        --benchmark_filter='-BM_HdCpsPipelineSpawn'
    # Per-scenario floors on top of the default: the single-scheduler
    # rotation scenarios (remote_heavy and the topology matrix) are far
    # more stable run-to-run than the contended micro rows, so they get
    # tighter catastrophic-collapse floors (still well below the noise
    # bands recorded in EXPERIMENTS.md).
    tools/bench_compare "$builddir/artifacts/BENCH_micro.json" \
        "$builddir/artifacts/BENCH_micro_rerun.json" \
        --min-ratio 0.35 \
        --min-ratio remote_heavy=0.5 \
        --min-ratio local_heavy=0.5 \
        --min-ratio bursty=0.5 \
        --min-ratio skewed_destination=0.5
    echo "bench artifacts: $builddir/artifacts/BENCH_micro.json" \
         "$builddir/artifacts/BENCH_micro_rerun.json"
}

# Topology soak: the same pinned-seed chaos stream under a synthetic
# 2-node topology, so hierarchical routing, node-aware reclamation,
# and the quarantine fallbacks run under the sanitizers with the
# invariant checker on. Synthetic topologies carry no CPU lists (no
# affinity syscalls), so this slice behaves identically on any CI
# host, single-node or not.
topology_soak() {
    local builddir=$1
    "$builddir"/tools/hdcps_soak --runs 8 --seed 61 --threads 4 \
        --budget-ms 45000 --topology 2x2 \
        --designs hdcps-sw,hdcps-srq,hdcps-mq
    "$builddir"/tools/hdcps_soak --runs 6 --seed 67 --threads 4 \
        --budget-ms 45000 --topology 2x2 --supervisor-slice 1 \
        --service-slice 0 --designs hdcps-sw,hdcps-mq
}

for preset in "${presets[@]}"; do
    builddir=build
    [ "$preset" != default ] && builddir="build-$preset"
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$jobs" -- "${targets[@]}"
    echo "=== [$preset] ctest ==="
    ctest --preset "$preset" -j "$jobs"
    echo "=== [$preset] fault-injection stress ==="
    fault_stress "$builddir"
    echo "=== [$preset] chaos soak ==="
    chaos_soak "$builddir"
    echo "=== [$preset] supervisor chaos ==="
    supervisor_chaos "$builddir"
    echo "=== [$preset] topology soak ==="
    topology_soak "$builddir"
    echo "=== [$preset] fairness chaos ==="
    fairness_chaos "$builddir"
    echo "=== [$preset] job-stream smoke ==="
    service_stream_smoke "$builddir"
    echo "=== [$preset] bench smoke ==="
    bench_smoke "$builddir"
    echo "=== [$preset] OK ==="
done
