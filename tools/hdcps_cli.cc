/**
 * @file
 * hdcps — command-line driver for the library.
 *
 * Runs any workload over any scheduler design, on either the simulated
 * Table-I multicore or the host machine's threads, against generated
 * or loaded inputs, and reports completion, breakdown, drift, and
 * verification. This is the "try it on your graph" entry point:
 *
 *   hdcps --kernel sssp --input usa --design hdcps-hw
 *   hdcps --kernel bfs --input web-Google.txt --mode threads --threads 8
 *   hdcps --kernel pagerank --input lj --design swarm --cores 16 --csv
 *   hdcps --list
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "runtime/executor_service.h"
#include "simsched/runner.h"
#include "stats/table.h"
#include "support/fault.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace {

using namespace hdcps;

struct Options
{
    std::string kernel = "sssp";
    std::string input = "usa";
    std::string design = "hdcps-sw";
    std::string mode = "sim";
    unsigned cores = 64;
    unsigned threads = 4;
    unsigned scale = 1;
    uint64_t seed = 1;
    NodeId source = 0;
    bool csv = false;
    bool list = false;
    bool printConfig = false;
    bool stats = false;
    bool modeExplicit = false;
    std::string metricsOut;      ///< empty = no metrics export
    unsigned metricsInterval = 0; ///< 0 = per-mode default
    std::string faultSpec;       ///< empty = no fault injection
    uint64_t watchdogMs = 0;     ///< 0 = watchdog off
    uint64_t reclaimAfterMs = 0; ///< 0 = sRQ reclamation off
    std::string stragglerSpec;   ///< empty = no straggler injection
    uint64_t jobStream = 0;      ///< 0 = single run; N = replay N jobs
    uint64_t tenants = 0;        ///< 0 = single implicit tenant
    std::vector<double> tenantWeights; ///< per-tenant fair-share weights
    std::string arrivals = "poisson"; ///< poisson|burst arrival process
    uint64_t rate = 50;          ///< mean job arrivals per second
    uint64_t burst = 8;          ///< jobs per burst (burst arrivals)
    uint64_t admitCap = 16;      ///< admission queue capacity
    bool admitBlock = false;     ///< block instead of reject when full
    uint64_t jobDeadlineMs = 0;  ///< per-job deadline (0 = none)
    uint64_t jobRetries = 1;     ///< task attempts per job (1 = none)
    bool faultList = false;      ///< print the fault-site catalog
    bool supervise = false;      ///< worker supervision for --job-stream
    uint64_t maxRestarts = 8;    ///< restart budget before escalation
    bool deadLetter = false;     ///< quarantine poison tasks per job
    Topology topology;           ///< hdcps-* worker placement (threads)
};

void
usage()
{
    std::cout <<
        "usage: hdcps_cli [options]\n"
        "  --kernel K    sssp|bfs|astar|mst|color|pagerank (default sssp)\n"
        "  --input I     generated input (cage|usa|wg|lj) or a graph file\n"
        "                (.gr DIMACS, .mtx MatrixMarket, .bin, else edge list)\n"
        "  --design D    scheduler design (see --list); default hdcps-sw\n"
        "  --mode M      sim (cycle-level 64-core machine) | threads (host)\n"
        "  --cores N     simulated cores (default 64)\n"
        "  --threads N   host threads in --mode threads (default 4)\n"
        "  --scale N     generated-input scale factor (default 1)\n"
        "  --seed S      generator/scheduler seed (default 1)\n"
        "  --source N    source node for traversal kernels (default 0)\n"
        "  --csv         machine-readable one-line output\n"
        "  --metrics-out P    export scheduler observability series\n"
        "                (drift, TDF, queue occupancy, breakdowns) to P\n"
        "                (.csv -> CSV, else JSON); implies --mode threads\n"
        "  --metrics-interval N   pops between metric samples\n"
        "                (default 500)\n"
        "  --fault-spec S     arm fault-injection sites for the run:\n"
        "                site:mode[:arg][,...] with modes nth|prob|once|\n"
        "                delay (site names under --list); seeded by --seed\n"
        "  --watchdog-ms N    fail a threaded run when no task is popped\n"
        "                for N ms while work is pending (default off)\n"
        "  --reclaim-after-ms N   let idle workers reclaim a stalled\n"
        "                worker's queued tasks once its heartbeat is\n"
        "                stale by N ms (threads mode; default off)\n"
        "  --straggler-spec S     pause worker threads on purpose:\n"
        "                worker:atCheck:pauseMs[,...] or rand:P:MAXMS\n"
        "                (threads mode; seeded by --seed)\n"
        "  --topology T       worker placement for the hdcps-* designs\n"
        "                in --mode threads: flat (default, single node),\n"
        "                auto (detect NUMA via sysfs, pin workers, NUMA-\n"
        "                place buffers), or NxM (synthetic N nodes x M\n"
        "                cores: hierarchical routing without affinity,\n"
        "                deterministic on any host)\n"
        "  --job-stream N     trace-replay N jobs of the chosen kernel\n"
        "                (random sources) through the multi-tenant\n"
        "                ExecutorService and report per-job p50/p99\n"
        "                latency (threads mode)\n"
        "  --tenants N        spread --job-stream jobs round-robin\n"
        "                across N tenants under weighted-fair dispatch\n"
        "                and report each tenant's completed share\n"
        "  --weights W1,W2,.. fair-share weight per tenant (defaults\n"
        "                to 1; shorter lists pad with 1); a weight-2\n"
        "                tenant gets twice the dispatch share of a\n"
        "                weight-1 tenant while both are backlogged\n"
        "  --arrivals A       job arrival process: poisson|burst\n"
        "                (default poisson)\n"
        "  --rate R      mean job arrivals per second (default 50)\n"
        "  --burst B     jobs per burst for --arrivals burst "
        "(default 8)\n"
        "  --admit-cap N      admission queue capacity (default 16)\n"
        "  --admit-block      block submission when the admission\n"
        "                queue is full instead of rejecting\n"
        "  --job-deadline-ms N    per-job deadline (default none)\n"
        "  --job-retries N    task attempts before a job fails\n"
        "                (default 1 = no retries)\n"
        "  --supervise        enable worker supervision for --job-stream\n"
        "                (health FSM, quarantine + replacement workers)\n"
        "  --max-restarts N   worker restart budget before the service\n"
        "                escalates (default 8; implies --supervise)\n"
        "  --dead-letter      divert tasks that exhaust --job-retries to\n"
        "                the per-job dead-letter queue instead of\n"
        "                failing the job\n"
        "  --stats       print the input graph's statistics and exit\n"
        "  --config      print the simulated machine's Table-I parameters\n"
        "  --list        list kernels, designs and fault sites, then exit\n"
        "  --fault-list  list fault-injection sites with their\n"
        "                descriptions, then exit\n";
}

/**
 * Strict decimal parse for numeric option values. strtoul-style
 * laissez-faire parsing silently turned "--threads -1" into 4 billion
 * threads and "--cores 8x" into 8; here anything but a plain
 * non-negative decimal number within [0, max] is a fatal usage error.
 */
uint64_t
parseUint(const char *flag, const char *text, uint64_t max)
{
    if (text[0] == '\0' || text[0] == '-' || text[0] == '+' ||
        std::isspace(static_cast<unsigned char>(text[0]))) {
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    if (errno == ERANGE || parsed > max) {
        hdcps_fatal("%s: value '%s' out of range (max %llu)", flag, text,
                    static_cast<unsigned long long>(max));
    }
    return parsed;
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hdcps_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    constexpr uint64_t maxUnsigned =
        std::numeric_limits<unsigned>::max();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--kernel") {
            options.kernel = value(i);
        } else if (arg == "--input") {
            options.input = value(i);
        } else if (arg == "--design") {
            options.design = value(i);
        } else if (arg == "--mode") {
            options.mode = value(i);
            options.modeExplicit = true;
        } else if (arg == "--metrics-out") {
            options.metricsOut = value(i);
        } else if (arg == "--metrics-interval") {
            options.metricsInterval = unsigned(
                parseUint("--metrics-interval", value(i), maxUnsigned));
        } else if (arg == "--cores") {
            options.cores =
                unsigned(parseUint("--cores", value(i), maxUnsigned));
        } else if (arg == "--threads") {
            options.threads =
                unsigned(parseUint("--threads", value(i), maxUnsigned));
        } else if (arg == "--scale") {
            options.scale =
                unsigned(parseUint("--scale", value(i), maxUnsigned));
        } else if (arg == "--seed") {
            options.seed =
                parseUint("--seed", value(i),
                          std::numeric_limits<uint64_t>::max());
        } else if (arg == "--source") {
            options.source = NodeId(
                parseUint("--source", value(i),
                          std::numeric_limits<NodeId>::max()));
        } else if (arg == "--fault-spec") {
            options.faultSpec = value(i);
        } else if (arg == "--watchdog-ms") {
            // Capped to a day: anything larger is a typo, and the cap
            // keeps window * 1ms arithmetic trivially overflow-free.
            options.watchdogMs =
                parseUint("--watchdog-ms", value(i), 86400000ULL);
        } else if (arg == "--reclaim-after-ms") {
            // Same day-cap rationale as --watchdog-ms.
            options.reclaimAfterMs =
                parseUint("--reclaim-after-ms", value(i), 86400000ULL);
        } else if (arg == "--straggler-spec") {
            options.stragglerSpec = value(i);
        } else if (arg == "--topology") {
            std::string error;
            if (!Topology::parseSpec(value(i), &options.topology,
                                     &error))
                hdcps_fatal("--topology: %s", error.c_str());
        } else if (arg == "--job-stream") {
            options.jobStream =
                parseUint("--job-stream", value(i), 1000000);
        } else if (arg == "--tenants") {
            options.tenants = parseUint("--tenants", value(i), 64);
            hdcps_check(options.tenants >= 1,
                        "--tenants must be >= 1");
        } else if (arg == "--weights") {
            options.tenantWeights.clear();
            std::stringstream ss(value(i));
            std::string item;
            while (std::getline(ss, item, ',')) {
                char *end = nullptr;
                double w = std::strtod(item.c_str(), &end);
                if (end == item.c_str() || *end != '\0' || !(w > 0))
                    hdcps_fatal("--weights: want positive numbers "
                                "separated by commas, got '%s'",
                                item.c_str());
                options.tenantWeights.push_back(w);
            }
            if (options.tenantWeights.empty())
                hdcps_fatal("--weights: empty list");
        } else if (arg == "--arrivals") {
            options.arrivals = value(i);
            if (options.arrivals != "poisson" &&
                options.arrivals != "burst") {
                hdcps_fatal("--arrivals: want poisson|burst, got '%s'",
                            options.arrivals.c_str());
            }
        } else if (arg == "--rate") {
            options.rate = parseUint("--rate", value(i), 1000000);
            hdcps_check(options.rate >= 1, "--rate must be >= 1");
        } else if (arg == "--burst") {
            options.burst = parseUint("--burst", value(i), 100000);
            hdcps_check(options.burst >= 1, "--burst must be >= 1");
        } else if (arg == "--admit-cap") {
            options.admitCap =
                parseUint("--admit-cap", value(i), 1000000);
            hdcps_check(options.admitCap >= 1,
                        "--admit-cap must be >= 1");
        } else if (arg == "--admit-block") {
            options.admitBlock = true;
        } else if (arg == "--job-deadline-ms") {
            options.jobDeadlineMs =
                parseUint("--job-deadline-ms", value(i), 86400000ULL);
        } else if (arg == "--job-retries") {
            options.jobRetries =
                parseUint("--job-retries", value(i), 100);
            hdcps_check(options.jobRetries >= 1,
                        "--job-retries must be >= 1");
        } else if (arg == "--supervise") {
            options.supervise = true;
        } else if (arg == "--max-restarts") {
            options.maxRestarts =
                parseUint("--max-restarts", value(i), 100000);
            options.supervise = true;
        } else if (arg == "--dead-letter") {
            options.deadLetter = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--config") {
            options.printConfig = true;
        } else if (arg == "--list") {
            options.list = true;
        } else if (arg == "--fault-list") {
            options.faultList = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hdcps_fatal("unknown option '%s'", arg.c_str());
        }
    }
    return options;
}

Graph
loadInput(const Options &options)
{
    for (const char *generated : {"cage", "usa", "wg", "lj"}) {
        if (options.input == generated)
            return makePaperInput(options.input, options.scale,
                                  options.seed);
    }
    // The loaders throw instead of exiting (they are library code);
    // the CLI is the boundary that turns a bad input file back into
    // the classic message-plus-nonzero-exit behavior.
    try {
        return loadAnyFile(options.input);
    } catch (const GraphIoError &e) {
        hdcps_fatal("%s", e.what());
    }
}

std::unique_ptr<Scheduler>
makeThreaded(const Options &options, unsigned sampleInterval)
{
    const unsigned t = options.threads;
    if (options.design == "reld")
        return std::make_unique<ReldScheduler>(t, options.seed);
    if (options.design == "multiqueue")
        return std::make_unique<MultiQueueScheduler>(t, 2, options.seed);
    if (options.design == "obim")
        return std::make_unique<ObimScheduler>(t);
    if (options.design == "pmod")
        return std::make_unique<PmodScheduler>(t);
    if (options.design == "swminnow")
        return std::make_unique<SwMinnowScheduler>(t);
    if (options.design == "hdcps-srq") {
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.sampleInterval = sampleInterval;
        config.topology = options.topology;
        return std::make_unique<HdCpsScheduler>(t, config);
    }
    if (options.design == "hdcps-sw") {
        HdCpsConfig config = HdCpsScheduler::configSw();
        config.sampleInterval = sampleInterval;
        config.topology = options.topology;
        return std::make_unique<HdCpsScheduler>(t, config);
    }
    if (options.design == "hdcps-mq") {
        // HD-CPS:SW mechanisms over the relaxed MultiQueue local PQ.
        HdCpsConfig config = HdCpsMqScheduler::configSw();
        config.sampleInterval = sampleInterval;
        config.seed = options.seed;
        config.topology = options.topology;
        return std::make_unique<HdCpsMqScheduler>(t, config);
    }
    hdcps_fatal("design '%s' is not available in --mode threads "
                "(hardware designs need --mode sim)",
                options.design.c_str());
}

int
runSim(const Options &options, Workload &workload)
{
    SimConfig config;
    config.numCores = options.cores;
    unsigned width = 1;
    for (unsigned w = 1; w * w <= options.cores; ++w) {
        if (options.cores % w == 0)
            width = w;
    }
    config.meshWidth = options.cores / width;
    if (options.printConfig)
        config.printTable(std::cout);

    SimResult r = simulate(options.design, workload, config,
                           options.seed);
    if (options.csv) {
        std::cout << options.kernel << "," << options.input << ","
                  << options.design << "," << options.cores << ","
                  << r.completionCycles << ","
                  << r.total.tasksProcessed << "," << r.avgDrift << ","
                  << (r.verified ? "ok" : "FAIL") << "\n";
    } else {
        Table table({"metric", "value"});
        table.row().cell("design").cell(options.design);
        table.row().cell("completion (cycles)").cell(
            r.completionCycles);
        table.row().cell("tasks processed").cell(
            r.total.tasksProcessed);
        table.row().cell("sequential tasks").cell(
            workload.sequentialTasks());
        table.row().cell("avg drift (Eq. 1)").cell(r.avgDrift, 2);
        table.row().cell("enqueue share").cell(
            r.total.fraction(Component::Enqueue) * 100.0, 1);
        table.row().cell("dequeue share").cell(
            r.total.fraction(Component::Dequeue) * 100.0, 1);
        table.row().cell("compute share").cell(
            r.total.fraction(Component::Compute) * 100.0, 1);
        table.row().cell("comm share").cell(
            r.total.fraction(Component::Comm) * 100.0, 1);
        table.row().cell("NoC messages").cell(r.noc.messages);
        table.row().cell("verified").cell(r.verified ? "yes" : "NO");
        table.printText(std::cout, options.kernel + " on " +
                                       options.input + " (simulated " +
                                       std::to_string(options.cores) +
                                       " cores)");
        if (!r.verified)
            std::cout << "verification error: " << r.verifyError
                      << "\n";
    }
    return r.verified ? 0 : 1;
}

int
runThreads(const Options &options, Workload &workload)
{
    // Metrics sampling defaults to a tighter interval than the TDF
    // default (2000) so short CLI runs still yield usable series.
    unsigned interval =
        options.metricsInterval > 0 ? options.metricsInterval : 500;
    unsigned sampleInterval = options.metricsOut.empty()
                                  ? HdCpsConfig{}.sampleInterval
                                  : interval;
    auto scheduler = makeThreaded(options, sampleInterval);

    std::unique_ptr<MetricsRegistry> metrics;
    RunOptions runOptions;
    runOptions.numThreads = options.threads;
    runOptions.watchdogMs = options.watchdogMs;
    runOptions.reclaimAfterMs = options.reclaimAfterMs;

    // Straggler injection lives for the run only; the RAII scope keeps
    // the injector installed exactly while workers may pause.
    std::unique_ptr<ScopedStragglerInjection> stragglers;
    if (!options.stragglerSpec.empty()) {
        stragglers = std::make_unique<ScopedStragglerInjection>(
            options.threads, options.seed);
        std::string error;
        if (!stragglers->injector().parseSpec(options.stragglerSpec,
                                              &error))
            hdcps_fatal("--straggler-spec: %s", error.c_str());
    }
    if (!options.metricsOut.empty()) {
        MetricsRegistry::Config config;
        config.sampleInterval = interval;
        metrics =
            std::make_unique<MetricsRegistry>(options.threads, config);
        runOptions.metrics = metrics.get();
        runOptions.driftSampleInterval = interval;
    }

    RunResult r = run(*scheduler, workload.initialTasks(),
                      workloadProcessFn(workload), runOptions);
    if (!r.ok()) {
        std::cerr << "run failed: " << r.error << "\n";
        return 2;
    }
    std::string why;
    bool verified = workload.verify(&why);

    if (metrics) {
        if (!writeMetricsFile(options.metricsOut, metrics->snapshot()))
            hdcps_fatal("cannot write metrics to '%s'",
                        options.metricsOut.c_str());
        if (!options.csv)
            std::cout << "metrics written to " << options.metricsOut
                      << "\n";
    }
    if (options.csv) {
        std::cout << options.kernel << "," << options.input << ","
                  << options.design << "," << options.threads << ","
                  << r.wallNs << "," << r.total.tasksProcessed << ","
                  << r.avgDrift << "," << (verified ? "ok" : "FAIL")
                  << "\n";
    } else {
        Table table({"metric", "value"});
        table.row().cell("design").cell(std::string(scheduler->name()));
        table.row().cell("wall time (ms)").cell(double(r.wallNs) / 1e6,
                                                2);
        table.row().cell("tasks processed").cell(
            r.total.tasksProcessed);
        table.row().cell("sequential tasks").cell(
            workload.sequentialTasks());
        table.row().cell("avg drift (Eq. 1)").cell(r.avgDrift, 2);
        table.row().cell("verified").cell(verified ? "yes" : "NO");
        table.printText(std::cout, options.kernel + " on " +
                                       options.input + " (" +
                                       std::to_string(options.threads) +
                                       " host threads)");
        if (!verified)
            std::cout << "verification error: " << why << "\n";
    }
    return verified ? 0 : 1;
}

/**
 * Trace-replay job-stream driver: submits --job-stream jobs of the
 * chosen kernel (each from a random source node, sharing the immutable
 * input graph) to a long-lived ExecutorService under a Poisson or
 * bursty arrival process, then reports per-job p50/p99/max latency,
 * throughput, and the admission/retry/deadline tallies. Completed
 * jobs are verified against their sequential oracle.
 */
int
runJobStream(const Options &options, const Graph &graph)
{
    auto scheduler =
        makeThreaded(options, HdCpsConfig{}.sampleInterval);

    std::unique_ptr<ScopedStragglerInjection> stragglers;
    if (!options.stragglerSpec.empty()) {
        stragglers = std::make_unique<ScopedStragglerInjection>(
            options.threads, options.seed);
        std::string error;
        if (!stragglers->injector().parseSpec(options.stragglerSpec,
                                              &error))
            hdcps_fatal("--straggler-spec: %s", error.c_str());
    }

    std::unique_ptr<MetricsRegistry> metrics;
    if (!options.metricsOut.empty()) {
        MetricsRegistry::Config config;
        config.sampleInterval =
            options.metricsInterval > 0 ? options.metricsInterval : 500;
        metrics =
            std::make_unique<MetricsRegistry>(options.threads, config);
    }

    ServiceOptions serviceOptions;
    serviceOptions.numThreads = options.threads;
    serviceOptions.admissionCapacity = options.admitCap;
    serviceOptions.blockWhenFull = options.admitBlock;
    serviceOptions.seed = options.seed;
    serviceOptions.metrics = metrics.get();
    if (options.supervise) {
        serviceOptions.supervisor.enabled = true;
        serviceOptions.supervisor.maxRestarts =
            unsigned(options.maxRestarts);
    }
    // --tenants: pre-register tenants 1..N with their --weights (pad
    // short lists with weight 1) so weighted-fair dispatch applies
    // from the first job.
    for (uint64_t t = 0; t < options.tenants; ++t) {
        TenantQuota quota;
        if (t < options.tenantWeights.size())
            quota.weight = options.tenantWeights[t];
        serviceOptions.tenants[TenantId(t + 1)] = quota;
    }
    ExecutorService svc(*scheduler, serviceOptions);

    // Each job owns its workload (oracle state is per-source); the
    // entry outlives the job because the ProcessFn captures it.
    struct ReplayedJob
    {
        JobHandle handle;
        std::unique_ptr<Workload> workload;
    };
    std::vector<ReplayedJob> jobs;
    jobs.reserve(options.jobStream);

    Rng rng(mix64(options.seed ^ 0x6a6f62ULL)); // "job"
    uint64_t startNs = nowNs();
    for (uint64_t i = 0; i < options.jobStream; ++i) {
        NodeId source = NodeId(rng.below(graph.numNodes()));
        auto workload = makeWorkload(options.kernel, graph, source);
        JobSpec spec;
        spec.name = options.kernel + "#" + std::to_string(i);
        spec.process = workloadProcessFn(*workload);
        spec.initial = workload->initialTasks();
        spec.priority = rng.below(8);
        if (options.tenants > 0)
            spec.tenant = TenantId(1 + i % options.tenants);
        spec.deadlineMs = options.jobDeadlineMs;
        spec.retry.maxAttempts = uint32_t(options.jobRetries);
        spec.retry.deadLetterOnExhaustion = options.deadLetter;
        jobs.push_back(
            ReplayedJob{svc.submit(std::move(spec)),
                        std::move(workload)});

        if (i + 1 == options.jobStream)
            break;
        if (options.arrivals == "poisson") {
            // Exponential inter-arrival with mean 1/rate; uniform() is
            // in [0, 1), so 1-u is in (0, 1] and the log is finite.
            double gapSec = -std::log(1.0 - rng.uniform()) /
                            double(options.rate);
            std::this_thread::sleep_for(std::chrono::microseconds(
                uint64_t(gapSec * 1e6)));
        } else if ((i + 1) % options.burst == 0) {
            // Back-to-back within a burst; mean rate preserved by the
            // inter-burst gap.
            std::this_thread::sleep_for(std::chrono::microseconds(
                options.burst * 1000000 / options.rate));
        }
    }

    uint64_t rejected = 0, deadlineFailed = 0, completed = 0;
    uint64_t verifyFailures = 0, hardFailures = 0, poisonedJobs = 0;
    for (ReplayedJob &job : jobs) {
        JobState got = job.handle.wait();
        if (got == JobState::Rejected) {
            ++rejected;
            continue;
        }
        if (got == JobState::Completed) {
            ++completed;
            // A job that dead-lettered tasks completed by policy, not
            // by finishing its relaxations — its oracle can't hold.
            if (job.handle.poisonedTasks() > 0) {
                ++poisonedJobs;
                continue;
            }
            std::string why;
            if (!job.workload->verify(&why)) {
                ++verifyFailures;
                std::cerr << "verification error: job '"
                          << job.handle.name() << "': " << why << "\n";
            }
            continue;
        }
        bool deadline =
            got == JobState::Failed &&
            job.handle.error().find("deadline") != std::string::npos;
        if (deadline) {
            ++deadlineFailed;
        } else {
            ++hardFailures;
            std::cerr << "job '" << job.handle.name() << "' ended "
                      << jobStateName(got) << ": "
                      << job.handle.error() << "\n";
        }
    }
    uint64_t wallNs = nowNs() - startNs;
    ServiceStats stats = svc.stats();
    std::vector<TenantStats> tenantShares = svc.tenantStats();
    svc.shutdown();

    if (metrics) {
        if (!writeMetricsFile(options.metricsOut, metrics->snapshot()))
            hdcps_fatal("cannot write metrics to '%s'",
                        options.metricsOut.c_str());
        if (!options.csv)
            std::cout << "metrics written to " << options.metricsOut
                      << "\n";
    }

    double wallSec = double(wallNs) / 1e9;
    double throughput = wallSec > 0 ? double(completed) / wallSec : 0;
    if (options.csv) {
        std::cout << options.kernel << "," << options.input << ","
                  << options.design << "," << options.threads << ","
                  << options.jobStream << "," << completed << ","
                  << deadlineFailed << "," << rejected << ","
                  << stats.taskRetries << "," << wallNs << ","
                  << stats.jobLatencyP50Ms << ","
                  << stats.jobLatencyP99Ms << ","
                  << stats.jobLatencyMaxMs << "," << throughput << ","
                  << stats.workerRestarts << ","
                  << stats.poisonedTasks << ","
                  << (verifyFailures + hardFailures == 0 ? "ok"
                                                         : "FAIL")
                  << "\n";
    } else {
        Table table({"metric", "value"});
        table.row().cell("design").cell(std::string(scheduler->name()));
        table.row().cell("arrivals").cell(
            options.arrivals + " @ " + std::to_string(options.rate) +
            "/s");
        table.row().cell("jobs submitted").cell(stats.submitted);
        table.row().cell("jobs completed").cell(completed);
        table.row().cell("jobs rejected (backpressure)").cell(rejected);
        table.row().cell("jobs deadline-expired").cell(deadlineFailed);
        table.row().cell("task retries").cell(stats.taskRetries);
        table.row().cell("tasks drained").cell(stats.tasksDrained);
        if (options.supervise) {
            table.row().cell("worker restarts").cell(
                stats.workerRestarts);
            table.row().cell("health transitions").cell(
                stats.healthTransitions);
            table.row().cell("service escalated").cell(
                stats.escalated ? "YES" : "no");
        }
        if (options.deadLetter) {
            table.row().cell("poisoned tasks (dead-lettered)").cell(
                stats.poisonedTasks);
            table.row().cell("jobs with dead letters").cell(
                poisonedJobs);
        }
        if (options.tenants > 0) {
            // Share of processed tasks per tenant: under saturation
            // this tracks the configured weights (the fairness
            // invariant the ExecutorService tests pin down).
            uint64_t totalProcessed = 0;
            for (const TenantStats &ts : tenantShares)
                totalProcessed += ts.tasksProcessed;
            for (const TenantStats &ts : tenantShares) {
                double share =
                    totalProcessed > 0
                        ? 100.0 * double(ts.tasksProcessed) /
                              double(totalProcessed)
                        : 0.0;
                std::ostringstream label;
                label << "tenant " << ts.tenant << " (weight "
                      << ts.weight << ")";
                std::ostringstream detail;
                detail << ts.jobsCompleted << " jobs, "
                       << ts.rejected << " rejected, " << std::fixed
                       << std::setprecision(1) << share
                       << "% task share";
                table.row().cell(label.str()).cell(detail.str());
            }
        }
        table.row().cell("wall time (ms)").cell(double(wallNs) / 1e6,
                                                2);
        table.row().cell("job latency p50 (ms)").cell(
            stats.jobLatencyP50Ms, 2);
        table.row().cell("job latency p99 (ms)").cell(
            stats.jobLatencyP99Ms, 2);
        table.row().cell("job latency max (ms)").cell(
            stats.jobLatencyMaxMs, 2);
        table.row().cell("throughput (jobs/s)").cell(throughput, 1);
        table.printText(std::cout,
                        "job stream: " +
                            std::to_string(options.jobStream) + " x " +
                            options.kernel + " on " + options.input +
                            " (" + std::to_string(options.threads) +
                            " host threads)");
    }
    if (hardFailures > 0)
        return 2;
    return verifyFailures == 0 ? 0 : 1;
}

/** Print every registered fault site with its description. */
void
printFaultCatalog()
{
    size_t count = 0;
    const FaultSiteInfo *sites = faultSiteCatalog(count);
    size_t width = 0;
    for (size_t i = 0; i < count; ++i)
        width = std::max(width, std::string(sites[i].name).size());
    std::cout << "fault sites (--fault-spec site:mode[:arg][,...], "
                 "modes nth|prob|once|delay):\n";
    for (size_t i = 0; i < count; ++i) {
        std::cout << "  " << sites[i].name
                  << std::string(
                         width - std::string(sites[i].name).size() + 2,
                         ' ')
                  << sites[i].description << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseArgs(argc, argv);
    if (options.faultList) {
        printFaultCatalog();
        return 0;
    }
    if (options.list) {
        size_t count = 0;
        const char *const *kernels = workloadNames(count);
        std::cout << "kernels:";
        for (size_t i = 0; i < count; ++i)
            std::cout << " " << kernels[i];
        const char *const *designs = designNames(count);
        std::cout << "\nsim designs:";
        for (size_t i = 0; i < count; ++i)
            std::cout << " " << designs[i];
        std::cout << " hdcps-srq hdcps-srq-tdf hdcps-srq-tdf-ac"
                  << "\nthreaded designs: reld multiqueue obim pmod "
                     "swminnow hdcps-srq hdcps-sw hdcps-mq\n";
        printFaultCatalog();
        return 0;
    }

    // Fault injection is armed before any input or scheduler work so
    // every instrumented path of this process sees the same registry.
    // The registry is static because workers may consult it right up
    // to the end of main.
    static FaultRegistry faults(options.seed);
    if (!options.faultSpec.empty()) {
        std::string error;
        if (!faults.parseSpec(options.faultSpec, &error))
            hdcps_fatal("--fault-spec: %s", error.c_str());
        for (const std::string &site : faults.armedSites()) {
            if (!faultSiteKnown(site)) {
                hdcps_fatal("--fault-spec: unknown fault site '%s' "
                            "(see --list)",
                            site.c_str());
            }
        }
        FaultRegistry::install(&faults);
    }

    Graph graph = loadInput(options);
    if (options.stats) {
        GraphStats s = computeStats(graph);
        std::cout << "nodes " << s.nodes << "\nedges " << s.edges
                  << "\navg-degree " << s.avgDegree << "\nmax-degree "
                  << s.maxDegree << "\nmin-degree " << s.minDegree
                  << "\nmax-weight " << graph.maxWeight()
                  << "\ncoordinates "
                  << (graph.hasCoordinates() ? "yes" : "no") << "\n";
        return 0;
    }
    hdcps_check(options.source < graph.numNodes(),
                "--source out of range");
    auto workload = makeWorkload(options.kernel, graph, options.source);

    if (!options.metricsOut.empty() && options.mode == "sim") {
        // Observability series come from the threaded runtime; the
        // cycle-level simulator reports its own end-of-run statistics.
        if (options.modeExplicit) {
            hdcps_fatal("--metrics-out needs --mode threads "
                        "(the simulator has no metrics hookup)");
        }
        std::cerr << "note: --metrics-out implies --mode threads\n";
        options.mode = "threads";
    }
    if (options.jobStream > 0 && options.mode == "sim") {
        // The service schedules host worker threads; the cycle-level
        // simulator runs one workload to completion.
        if (options.modeExplicit)
            hdcps_fatal("--job-stream needs --mode threads");
        std::cerr << "note: --job-stream implies --mode threads\n";
        options.mode = "threads";
    }
    if ((options.reclaimAfterMs > 0 || !options.stragglerSpec.empty()) &&
        options.mode == "sim") {
        // Both knobs act on host worker threads; the cycle-level
        // simulator has neither heartbeats nor pause points.
        if (options.modeExplicit) {
            hdcps_fatal("--reclaim-after-ms and --straggler-spec need "
                        "--mode threads");
        }
        std::cerr << "note: --reclaim-after-ms/--straggler-spec imply "
                     "--mode threads\n";
        options.mode = "threads";
    }

    if (options.mode == "sim")
        return runSim(options, *workload);
    if (options.jobStream > 0)
        return runJobStream(options, graph);
    if (options.mode == "threads")
        return runThreads(options, *workload);
    hdcps_fatal("unknown --mode '%s' (want sim|threads)",
                options.mode.c_str());
}
