/**
 * @file
 * hdcps — command-line driver for the library.
 *
 * Runs any workload over any scheduler design, on either the simulated
 * Table-I multicore or the host machine's threads, against generated
 * or loaded inputs, and reports completion, breakdown, drift, and
 * verification. This is the "try it on your graph" entry point:
 *
 *   hdcps --kernel sssp --input usa --design hdcps-hw
 *   hdcps --kernel bfs --input web-Google.txt --mode threads --threads 8
 *   hdcps --kernel pagerank --input lj --design swarm --cores 16 --csv
 *   hdcps --list
 */

#include <cstring>
#include <iostream>
#include <string>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "simsched/runner.h"
#include "stats/table.h"
#include "support/logging.h"

namespace {

using namespace hdcps;

struct Options
{
    std::string kernel = "sssp";
    std::string input = "usa";
    std::string design = "hdcps-sw";
    std::string mode = "sim";
    unsigned cores = 64;
    unsigned threads = 4;
    unsigned scale = 1;
    uint64_t seed = 1;
    NodeId source = 0;
    bool csv = false;
    bool list = false;
    bool printConfig = false;
    bool stats = false;
    bool modeExplicit = false;
    std::string metricsOut;      ///< empty = no metrics export
    unsigned metricsInterval = 0; ///< 0 = per-mode default
};

void
usage()
{
    std::cout <<
        "usage: hdcps_cli [options]\n"
        "  --kernel K    sssp|bfs|astar|mst|color|pagerank (default sssp)\n"
        "  --input I     generated input (cage|usa|wg|lj) or a graph file\n"
        "                (.gr DIMACS, .mtx MatrixMarket, .bin, else edge list)\n"
        "  --design D    scheduler design (see --list); default hdcps-sw\n"
        "  --mode M      sim (cycle-level 64-core machine) | threads (host)\n"
        "  --cores N     simulated cores (default 64)\n"
        "  --threads N   host threads in --mode threads (default 4)\n"
        "  --scale N     generated-input scale factor (default 1)\n"
        "  --seed S      generator/scheduler seed (default 1)\n"
        "  --source N    source node for traversal kernels (default 0)\n"
        "  --csv         machine-readable one-line output\n"
        "  --metrics-out P    export scheduler observability series\n"
        "                (drift, TDF, queue occupancy, breakdowns) to P\n"
        "                (.csv -> CSV, else JSON); implies --mode threads\n"
        "  --metrics-interval N   pops between metric samples\n"
        "                (default 500)\n"
        "  --stats       print the input graph's statistics and exit\n"
        "  --config      print the simulated machine's Table-I parameters\n"
        "  --list        list kernels and designs, then exit\n";
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hdcps_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--kernel") {
            options.kernel = value(i);
        } else if (arg == "--input") {
            options.input = value(i);
        } else if (arg == "--design") {
            options.design = value(i);
        } else if (arg == "--mode") {
            options.mode = value(i);
            options.modeExplicit = true;
        } else if (arg == "--metrics-out") {
            options.metricsOut = value(i);
        } else if (arg == "--metrics-interval") {
            options.metricsInterval =
                unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (arg == "--cores") {
            options.cores = unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (arg == "--threads") {
            options.threads =
                unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (arg == "--scale") {
            options.scale = unsigned(std::strtoul(value(i), nullptr, 10));
        } else if (arg == "--seed") {
            options.seed = std::strtoull(value(i), nullptr, 10);
        } else if (arg == "--source") {
            options.source =
                NodeId(std::strtoul(value(i), nullptr, 10));
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--config") {
            options.printConfig = true;
        } else if (arg == "--list") {
            options.list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hdcps_fatal("unknown option '%s'", arg.c_str());
        }
    }
    return options;
}

Graph
loadInput(const Options &options)
{
    for (const char *generated : {"cage", "usa", "wg", "lj"}) {
        if (options.input == generated)
            return makePaperInput(options.input, options.scale,
                                  options.seed);
    }
    return loadAnyFile(options.input);
}

std::unique_ptr<Scheduler>
makeThreaded(const Options &options, unsigned sampleInterval)
{
    const unsigned t = options.threads;
    if (options.design == "reld")
        return std::make_unique<ReldScheduler>(t, options.seed);
    if (options.design == "multiqueue")
        return std::make_unique<MultiQueueScheduler>(t, 2, options.seed);
    if (options.design == "obim")
        return std::make_unique<ObimScheduler>(t);
    if (options.design == "pmod")
        return std::make_unique<PmodScheduler>(t);
    if (options.design == "swminnow")
        return std::make_unique<SwMinnowScheduler>(t);
    if (options.design == "hdcps-srq") {
        HdCpsConfig config = HdCpsScheduler::configSrq();
        config.sampleInterval = sampleInterval;
        return std::make_unique<HdCpsScheduler>(t, config);
    }
    if (options.design == "hdcps-sw") {
        HdCpsConfig config = HdCpsScheduler::configSw();
        config.sampleInterval = sampleInterval;
        return std::make_unique<HdCpsScheduler>(t, config);
    }
    hdcps_fatal("design '%s' is not available in --mode threads "
                "(hardware designs need --mode sim)",
                options.design.c_str());
}

int
runSim(const Options &options, Workload &workload)
{
    SimConfig config;
    config.numCores = options.cores;
    unsigned width = 1;
    for (unsigned w = 1; w * w <= options.cores; ++w) {
        if (options.cores % w == 0)
            width = w;
    }
    config.meshWidth = options.cores / width;
    if (options.printConfig)
        config.printTable(std::cout);

    SimResult r = simulate(options.design, workload, config,
                           options.seed);
    if (options.csv) {
        std::cout << options.kernel << "," << options.input << ","
                  << options.design << "," << options.cores << ","
                  << r.completionCycles << ","
                  << r.total.tasksProcessed << "," << r.avgDrift << ","
                  << (r.verified ? "ok" : "FAIL") << "\n";
    } else {
        Table table({"metric", "value"});
        table.row().cell("design").cell(options.design);
        table.row().cell("completion (cycles)").cell(
            r.completionCycles);
        table.row().cell("tasks processed").cell(
            r.total.tasksProcessed);
        table.row().cell("sequential tasks").cell(
            workload.sequentialTasks());
        table.row().cell("avg drift (Eq. 1)").cell(r.avgDrift, 2);
        table.row().cell("enqueue share").cell(
            r.total.fraction(Component::Enqueue) * 100.0, 1);
        table.row().cell("dequeue share").cell(
            r.total.fraction(Component::Dequeue) * 100.0, 1);
        table.row().cell("compute share").cell(
            r.total.fraction(Component::Compute) * 100.0, 1);
        table.row().cell("comm share").cell(
            r.total.fraction(Component::Comm) * 100.0, 1);
        table.row().cell("NoC messages").cell(r.noc.messages);
        table.row().cell("verified").cell(r.verified ? "yes" : "NO");
        table.printText(std::cout, options.kernel + " on " +
                                       options.input + " (simulated " +
                                       std::to_string(options.cores) +
                                       " cores)");
        if (!r.verified)
            std::cout << "verification error: " << r.verifyError
                      << "\n";
    }
    return r.verified ? 0 : 1;
}

int
runThreads(const Options &options, Workload &workload)
{
    // Metrics sampling defaults to a tighter interval than the TDF
    // default (2000) so short CLI runs still yield usable series.
    unsigned interval =
        options.metricsInterval > 0 ? options.metricsInterval : 500;
    unsigned sampleInterval = options.metricsOut.empty()
                                  ? HdCpsConfig{}.sampleInterval
                                  : interval;
    auto scheduler = makeThreaded(options, sampleInterval);

    std::unique_ptr<MetricsRegistry> metrics;
    RunOptions runOptions;
    runOptions.numThreads = options.threads;
    if (!options.metricsOut.empty()) {
        MetricsRegistry::Config config;
        config.sampleInterval = interval;
        metrics =
            std::make_unique<MetricsRegistry>(options.threads, config);
        runOptions.metrics = metrics.get();
        runOptions.driftSampleInterval = interval;
    }

    RunResult r = run(*scheduler, workload.initialTasks(),
                      workloadProcessFn(workload), runOptions);
    std::string why;
    bool verified = workload.verify(&why);

    if (metrics) {
        if (!writeMetricsFile(options.metricsOut, metrics->snapshot()))
            hdcps_fatal("cannot write metrics to '%s'",
                        options.metricsOut.c_str());
        if (!options.csv)
            std::cout << "metrics written to " << options.metricsOut
                      << "\n";
    }
    if (options.csv) {
        std::cout << options.kernel << "," << options.input << ","
                  << options.design << "," << options.threads << ","
                  << r.wallNs << "," << r.total.tasksProcessed << ","
                  << r.avgDrift << "," << (verified ? "ok" : "FAIL")
                  << "\n";
    } else {
        Table table({"metric", "value"});
        table.row().cell("design").cell(std::string(scheduler->name()));
        table.row().cell("wall time (ms)").cell(double(r.wallNs) / 1e6,
                                                2);
        table.row().cell("tasks processed").cell(
            r.total.tasksProcessed);
        table.row().cell("sequential tasks").cell(
            workload.sequentialTasks());
        table.row().cell("avg drift (Eq. 1)").cell(r.avgDrift, 2);
        table.row().cell("verified").cell(verified ? "yes" : "NO");
        table.printText(std::cout, options.kernel + " on " +
                                       options.input + " (" +
                                       std::to_string(options.threads) +
                                       " host threads)");
        if (!verified)
            std::cout << "verification error: " << why << "\n";
    }
    return verified ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseArgs(argc, argv);
    if (options.list) {
        size_t count = 0;
        const char *const *kernels = workloadNames(count);
        std::cout << "kernels:";
        for (size_t i = 0; i < count; ++i)
            std::cout << " " << kernels[i];
        const char *const *designs = designNames(count);
        std::cout << "\nsim designs:";
        for (size_t i = 0; i < count; ++i)
            std::cout << " " << designs[i];
        std::cout << " hdcps-srq hdcps-srq-tdf hdcps-srq-tdf-ac"
                  << "\nthreaded designs: reld multiqueue obim pmod "
                     "swminnow hdcps-srq hdcps-sw\n";
        return 0;
    }

    Graph graph = loadInput(options);
    if (options.stats) {
        GraphStats s = computeStats(graph);
        std::cout << "nodes " << s.nodes << "\nedges " << s.edges
                  << "\navg-degree " << s.avgDegree << "\nmax-degree "
                  << s.maxDegree << "\nmin-degree " << s.minDegree
                  << "\nmax-weight " << graph.maxWeight()
                  << "\ncoordinates "
                  << (graph.hasCoordinates() ? "yes" : "no") << "\n";
        return 0;
    }
    hdcps_check(options.source < graph.numNodes(),
                "--source out of range");
    auto workload = makeWorkload(options.kernel, graph, options.source);

    if (!options.metricsOut.empty() && options.mode == "sim") {
        // Observability series come from the threaded runtime; the
        // cycle-level simulator reports its own end-of-run statistics.
        if (options.modeExplicit) {
            hdcps_fatal("--metrics-out needs --mode threads "
                        "(the simulator has no metrics hookup)");
        }
        std::cerr << "note: --metrics-out implies --mode threads\n";
        options.mode = "threads";
    }

    if (options.mode == "sim")
        return runSim(options, *workload);
    if (options.mode == "threads")
        return runThreads(options, *workload);
    hdcps_fatal("unknown --mode '%s' (want sim|threads)",
                options.mode.c_str());
}
