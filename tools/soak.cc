/**
 * @file
 * hdcps_soak — randomized chaos soak for the threaded schedulers.
 *
 * Each iteration draws a scenario from a seeded RNG — kernel × input ×
 * scheduler design × benign fault injection × straggler pauses — runs
 * it under the invariant-checking VerifyingScheduler wrapper with sRQ
 * reclamation and the watchdog armed, and diffs the result against the
 * workload's sequential oracle. A slice of the iterations arms a
 * fatal fault (exec.process.throw) on purpose and instead asserts the
 * *graceful-failure* contract: the run fails with the injected error,
 * no crash, and task conservation still holds.
 *
 * Everything is deterministic from --seed (per-run seeds are derived
 * with mix64), so any failing line reproduces standalone:
 *
 *   hdcps_soak --runs 40 --seed 7 --threads 4 --budget-ms 45000
 *
 * Exit status: 0 when every iteration met its contract, 1 otherwise.
 * CI runs this under tsan and asan-ubsan (tools/ci_sanitize.sh) where
 * the chaos doubles as a data-race and lifetime-bug detector.
 */

#include <cctype>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "cps/verifying_scheduler.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "support/fault.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace {

using namespace hdcps;

struct Options
{
    uint64_t runs = 20;
    uint64_t seed = 1;
    unsigned threads = 4;
    uint64_t budgetMs = 0; ///< 0 = unbounded
    bool verbose = false;
    /** Designs to draw from (default: all). The first |designs| runs
     *  visit each exactly once, so even short sweeps cover every
     *  requested backend before randomness takes over. */
    std::vector<std::string> designs;
};

void
usage()
{
    std::cout <<
        "usage: hdcps_soak [options]\n"
        "  --runs N       scenario iterations (default 20)\n"
        "  --seed S       base seed; run i uses mix64(S + i) (default 1)\n"
        "  --threads N    worker threads per run (default 4)\n"
        "  --budget-ms N  stop cleanly after N ms of wall time "
        "(default unbounded)\n"
        "  --designs A,B  restrict scenarios to these designs "
        "(default: all)\n"
        "  --verbose      print every scenario, not just failures\n";
}

uint64_t
parseUint(const char *flag, const char *text, uint64_t max)
{
    if (text[0] == '\0' || text[0] == '-' || text[0] == '+' ||
        std::isspace(static_cast<unsigned char>(text[0]))) {
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    if (errno == ERANGE || parsed > max) {
        hdcps_fatal("%s: value '%s' out of range (max %llu)", flag, text,
                    static_cast<unsigned long long>(max));
    }
    return parsed;
}

const char *const kDesigns[] = {"hdcps-sw",   "hdcps-srq", "hdcps-mq",
                                "reld",       "multiqueue", "obim",
                                "pmod",       "swminnow"};

/** Parse a comma-separated --designs list against kDesigns. */
std::vector<std::string>
parseDesignList(const char *text)
{
    std::vector<std::string> out;
    std::string item;
    for (const char *p = text;; ++p) {
        if (*p != ',' && *p != '\0') {
            item += *p;
            continue;
        }
        bool known = false;
        for (const char *design : kDesigns)
            known = known || item == design;
        if (!known) {
            hdcps_fatal("--designs: unknown design '%s' (want a "
                        "comma-separated subset of hdcps-sw, hdcps-srq, "
                        "hdcps-mq, reld, multiqueue, obim, pmod, "
                        "swminnow)",
                        item.c_str());
        }
        out.push_back(item);
        item.clear();
        if (*p == '\0')
            break;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hdcps_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--runs") {
            options.runs = parseUint("--runs", value(i), 1000000);
        } else if (arg == "--seed") {
            options.seed =
                parseUint("--seed", value(i),
                          std::numeric_limits<uint64_t>::max());
        } else if (arg == "--threads") {
            options.threads = unsigned(
                parseUint("--threads", value(i), 256));
        } else if (arg == "--budget-ms") {
            options.budgetMs =
                parseUint("--budget-ms", value(i), 86400000ULL);
        } else if (arg == "--designs") {
            options.designs = parseDesignList(value(i));
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hdcps_fatal("unknown option '%s'", arg.c_str());
        }
    }
    hdcps_check(options.threads >= 1, "--threads must be >= 1");
    if (options.designs.empty()) {
        options.designs.assign(std::begin(kDesigns),
                               std::end(kDesigns));
    }
    return options;
}

/** One drawn scenario, printable for reproduction. */
struct Scenario
{
    uint64_t seed = 0;
    std::string kernel;
    std::string input;
    std::string design;
    std::string faultSpec;     ///< benign fault sites, may be empty
    std::string stragglerSpec; ///< pause events, may be empty
    bool expectFailure = false; ///< exec.process.throw armed
};

const char *const kKernels[] = {"sssp", "bfs"};
const char *const kInputs[] = {"usa", "cage"};

/** Windows (ms): pauses are ~2x the reclaim window so a paused worker
 *  reliably crosses staleness, and the watchdog is far beyond both so
 *  it only fires for genuine hangs. */
constexpr uint64_t kReclaimAfterMs = 25;
constexpr uint64_t kWatchdogMs = 3000;

Scenario
drawScenario(Rng &rng, uint64_t runSeed, unsigned threads,
             const std::vector<std::string> &designs, uint64_t runIndex)
{
    Scenario s;
    s.seed = runSeed;
    s.kernel = kKernels[rng.below(std::size(kKernels))];
    s.input = kInputs[rng.below(std::size(kInputs))];
    // First cycle round-robins the design list so short CI sweeps still
    // put every requested backend through the chaos at least once;
    // after that, draw uniformly.
    s.design = runIndex < designs.size()
                   ? designs[runIndex]
                   : designs[rng.below(designs.size())];

    // Benign chaos: occasional pop misfires and forced overflow spills
    // exercise the retry and spill paths without changing semantics.
    if (rng.chance(0.5))
        s.faultSpec = "exec.pop.fail:prob:0.002";
    if (rng.chance(0.4)) {
        if (!s.faultSpec.empty())
            s.faultSpec += ",";
        s.faultSpec += "hdcps.overflow.spill:prob:0.01";
    }

    // Straggler pauses: one early pause well past the reclaim window,
    // sometimes on two workers at once.
    if (threads >= 2 && rng.chance(0.6)) {
        unsigned victim = 1 + unsigned(rng.below(threads - 1));
        uint64_t atCheck = 20 + rng.below(300);
        uint64_t pauseMs = 2 * kReclaimAfterMs + rng.below(30);
        s.stragglerSpec = std::to_string(victim) + ":" +
                          std::to_string(atCheck) + ":" +
                          std::to_string(pauseMs);
        if (threads >= 3 && rng.chance(0.25)) {
            unsigned other = 1 + unsigned(rng.below(threads - 1));
            if (other == victim)
                other = 1 + (other % (threads - 1));
            s.stragglerSpec += "," + std::to_string(other) + ":" +
                               std::to_string(20 + rng.below(300)) +
                               ":" + std::to_string(2 * kReclaimAfterMs);
        }
    }

    // A slice of runs tests graceful failure instead of completion.
    if (rng.chance(0.2)) {
        s.expectFailure = true;
        uint64_t nth = 100 + rng.below(400);
        if (!s.faultSpec.empty())
            s.faultSpec += ",";
        s.faultSpec += "exec.process.throw:nth:" + std::to_string(nth);
    }
    return s;
}

std::unique_ptr<Scheduler>
makeDesign(const Scenario &s, unsigned threads)
{
    if (s.design == "reld")
        return std::make_unique<ReldScheduler>(threads, s.seed);
    if (s.design == "multiqueue")
        return std::make_unique<MultiQueueScheduler>(threads, 2, s.seed);
    if (s.design == "obim")
        return std::make_unique<ObimScheduler>(threads);
    if (s.design == "pmod")
        return std::make_unique<PmodScheduler>(threads);
    if (s.design == "swminnow")
        return std::make_unique<SwMinnowScheduler>(threads);
    if (s.design == "hdcps-mq") {
        HdCpsConfig config = HdCpsMqScheduler::configSw();
        config.seed = s.seed;
        return std::make_unique<HdCpsMqScheduler>(threads, config);
    }
    HdCpsConfig config = s.design == "hdcps-srq"
                             ? HdCpsScheduler::configSrq()
                             : HdCpsScheduler::configSw();
    config.seed = s.seed;
    return std::make_unique<HdCpsScheduler>(threads, config);
}

std::string
describe(const Scenario &s)
{
    std::string out = s.kernel + "/" + s.input + "/" + s.design +
                      " seed=" + std::to_string(s.seed);
    if (!s.faultSpec.empty())
        out += " faults=" + s.faultSpec;
    if (!s.stragglerSpec.empty())
        out += " stragglers=" + s.stragglerSpec;
    if (s.expectFailure)
        out += " (expect graceful failure)";
    return out;
}

/** Sum of one named counter over all workers in a snapshot. */
uint64_t
counterTotal(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &counter : snap.counters) {
        if (counter.name == name)
            return counter.total;
    }
    return 0;
}

struct Tally
{
    uint64_t ran = 0;
    uint64_t failed = 0;
    uint64_t expectedFailures = 0;
    uint64_t reclaimedTasks = 0;
    uint64_t reclaimRuns = 0; ///< runs where reclamation moved tasks
    uint64_t pausesInjected = 0;
};

/** Run one scenario; returns true when it met its contract. */
bool
runScenario(const Scenario &s, const Options &options,
            const std::map<std::string, Graph> &graphs, Tally &tally)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "FAIL " << describe(s) << "\n  " << why << "\n";
        return false;
    };

    auto workload =
        makeWorkload(s.kernel, graphs.at(s.input), /*source=*/0);

    ScopedFaultInjection faults(s.seed);
    if (!s.faultSpec.empty()) {
        std::string error;
        hdcps_check(faults->parseSpec(s.faultSpec, &error),
                    "soak generated a bad fault spec: %s",
                    error.c_str());
    }

    ScopedStragglerInjection stragglers(options.threads, s.seed);
    if (!s.stragglerSpec.empty()) {
        std::string error;
        hdcps_check(stragglers.injector().parseSpec(s.stragglerSpec,
                                                    &error),
                    "soak generated a bad straggler spec: %s",
                    error.c_str());
    }

    auto inner = makeDesign(s, options.threads);
    VerifyingScheduler verified(*inner);
    // Armed single-writer checker: any scheduler/helper thread writing
    // another worker's metric slot mid-write is a conformance failure,
    // same as losing a task.
    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    MetricsRegistry metrics(options.threads, metricsConfig);

    RunOptions runOptions;
    runOptions.numThreads = options.threads;
    runOptions.watchdogMs = kWatchdogMs;
    runOptions.reclaimAfterMs = kReclaimAfterMs;
    runOptions.metrics = &metrics;
    runOptions.recordBreakdown = false;

    RunResult r = run(verified, workload->initialTasks(),
                      workloadProcessFn(*workload), runOptions);
    tally.pausesInjected += stragglers.injector().pausesInjected();

    // Invariants first: they must hold on every run, failed or not.
    std::string why;
    if (!verified.checkComplete(r.failed, &why))
        return fail("invariant violation: " + why);
    if (metrics.writerViolations() > 0) {
        std::string detail;
        for (const std::string &sample :
             metrics.writerViolationSamples())
            detail += "\n    " + sample;
        return fail("metrics single-writer violation (" +
                    std::to_string(metrics.writerViolations()) +
                    " overlapping writes):" + detail);
    }

    uint64_t reclaimed =
        counterTotal(metrics.snapshot(), "reclaimed_tasks");
    tally.reclaimedTasks += reclaimed;
    if (reclaimed > 0)
        ++tally.reclaimRuns;

    if (s.expectFailure) {
        if (!r.failed)
            return fail("expected the injected ProcessFn throw to fail "
                        "the run, but it completed");
        if (r.error.find("injected") == std::string::npos)
            return fail("run failed, but not with the injected error: " +
                        r.error);
        ++tally.expectedFailures;
        return true;
    }

    if (r.failed)
        return fail("run failed: " + r.error);
    if (!workload->verify(&why))
        return fail("oracle mismatch: " + why);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseArgs(argc, argv);

    // Generate each input once; scenarios share the (immutable) graphs.
    std::map<std::string, Graph> graphs;
    for (const char *input : kInputs)
        graphs.emplace(input, makePaperInput(input, 1, options.seed));

    Tally tally;
    uint64_t failures = 0;
    uint64_t startNs = nowNs();
    uint64_t i = 0;
    for (; i < options.runs; ++i) {
        if (options.budgetMs > 0 &&
            (nowNs() - startNs) / 1000000 >= options.budgetMs) {
            std::cout << "budget reached after " << i << "/"
                      << options.runs << " runs\n";
            break;
        }
        uint64_t runSeed = mix64(options.seed + i);
        Rng rng(runSeed);
        Scenario s = drawScenario(rng, runSeed, options.threads,
                                  options.designs, i);
        if (options.verbose)
            std::cout << "run " << i << ": " << describe(s) << "\n";
        ++tally.ran;
        if (!runScenario(s, options, graphs, tally)) {
            ++failures;
            ++tally.failed;
        }
    }

    std::cout << "soak: " << tally.ran << " runs, " << failures
              << " failures, " << tally.expectedFailures
              << " graceful injected failures, " << tally.reclaimedTasks
              << " tasks reclaimed across " << tally.reclaimRuns
              << " runs, " << tally.pausesInjected
              << " straggler pauses\n";
    return failures == 0 ? 0 : 1;
}
