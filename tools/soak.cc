/**
 * @file
 * hdcps_soak — randomized chaos soak for the threaded schedulers.
 *
 * Each iteration draws a scenario from a seeded RNG — kernel × input ×
 * scheduler design × benign fault injection × straggler pauses — runs
 * it under the invariant-checking VerifyingScheduler wrapper with sRQ
 * reclamation and the watchdog armed, and diffs the result against the
 * workload's sequential oracle. A slice of the iterations arms a
 * fatal fault (exec.process.throw) on purpose and instead asserts the
 * *graceful-failure* contract: the run fails with the injected error,
 * no crash, and task conservation still holds.
 *
 * Everything is deterministic from --seed (per-run seeds are derived
 * with mix64), so any failing line reproduces standalone:
 *
 *   hdcps_soak --runs 40 --seed 7 --threads 4 --budget-ms 45000
 *
 * Exit status: 0 when every iteration met its contract, 1 otherwise.
 * CI runs this under tsan and asan-ubsan (tools/ci_sanitize.sh) where
 * the chaos doubles as a data-race and lifetime-bug detector.
 */

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/workload.h"
#include "core/hdcps.h"
#include "cps/multiqueue.h"
#include "cps/obim.h"
#include "cps/pmod.h"
#include "cps/reld.h"
#include "cps/swminnow.h"
#include "cps/verifying_scheduler.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "runtime/executor_service.h"
#include "support/fault.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/straggler.h"
#include "support/timer.h"

namespace {

using namespace hdcps;

struct Options
{
    uint64_t runs = 20;
    uint64_t seed = 1;
    unsigned threads = 4;
    uint64_t budgetMs = 0; ///< 0 = unbounded
    bool verbose = false;
    /** Crash (SIGABRT + slot dump) on the first overlapping metrics
     *  write instead of counting it — turns a post-hoc conformance
     *  failure into a stack trace at the racing store. */
    bool abortOnWriterViolation = false;
    /** Fraction of runs that exercise the multi-tenant
     *  ExecutorService (job stream + cancel/deadline/retry chaos)
     *  instead of a single run(). */
    double serviceSlice = 0.25;
    /** Fraction of runs that arm the worker supervisor and kill or
     *  wedge workers mid-run (svc.worker.die / svc.worker.wedge, plus
     *  optional poison tasks), asserting heal + exact conservation. */
    double supervisorSlice = 0.15;
    /** Fraction of runs that chaos-test weighted-fair multi-tenant
     *  dispatch: a heavy-weight tenant floods the service while a
     *  weight-1 tenant must still progress, a rate-limited tenant must
     *  reject with a typed reason, and a deprioritized job's re-tagged
     *  incarnations must conserve exactly. */
    double fairnessSlice = 0.10;
    /** Designs to draw from (default: all). The first |designs| runs
     *  visit each exactly once, so even short sweeps cover every
     *  requested backend before randomness takes over. */
    std::vector<std::string> designs;
    /** Topology applied to the hdcps-* designs ("flat", "auto", or a
     *  synthetic NxM spec): chaos under hierarchical routing. Baseline
     *  designs have no topology knob and ignore it. */
    Topology topology;
};

void
usage()
{
    std::cout <<
        "usage: hdcps_soak [options]\n"
        "  --runs N       scenario iterations (default 20)\n"
        "  --seed S       base seed; run i uses mix64(S + i) (default 1)\n"
        "  --threads N    worker threads per run (default 4)\n"
        "  --budget-ms N  stop cleanly after N ms of wall time "
        "(default unbounded)\n"
        "  --designs A,B  restrict scenarios to these designs "
        "(default: all)\n"
        "  --topology T   topology for the hdcps-* designs: flat, auto\n"
        "                 (detect NUMA nodes), or NxM synthetic (e.g.\n"
        "                 2x2; deterministic, no affinity) (default "
        "flat)\n"
        "  --service-slice F  fraction of runs that chaos-test the\n"
        "                 multi-tenant ExecutorService instead of a\n"
        "                 single run() (default 0.25)\n"
        "  --supervisor-slice F   fraction of runs that kill/wedge\n"
        "                 supervised service workers mid-run and assert\n"
        "                 heal, capacity restoration, and exact task\n"
        "                 conservation (default 0.15)\n"
        "  --fairness-slice F fraction of runs that flood the service\n"
        "                 from a heavy-weight tenant and assert that a\n"
        "                 weight-1 tenant still progresses, quotas\n"
        "                 reject with typed reasons, and preemption\n"
        "                 re-tags conserve exactly (default 0.10)\n"
        "  --abort-on-writer-violation  SIGABRT at the first\n"
        "                 overlapping metrics write (stack trace at the\n"
        "                 racing store) instead of counting it\n"
        "  --verbose      print every scenario, not just failures\n";
}

uint64_t
parseUint(const char *flag, const char *text, uint64_t max)
{
    if (text[0] == '\0' || text[0] == '-' || text[0] == '+' ||
        std::isspace(static_cast<unsigned char>(text[0]))) {
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        hdcps_fatal("%s: want a non-negative integer, got '%s'", flag,
                    text);
    if (errno == ERANGE || parsed > max) {
        hdcps_fatal("%s: value '%s' out of range (max %llu)", flag, text,
                    static_cast<unsigned long long>(max));
    }
    return parsed;
}

const char *const kDesigns[] = {"hdcps-sw",   "hdcps-srq", "hdcps-mq",
                                "reld",       "multiqueue", "obim",
                                "pmod",       "swminnow"};

/** Parse a comma-separated --designs list against kDesigns. */
std::vector<std::string>
parseDesignList(const char *text)
{
    std::vector<std::string> out;
    std::string item;
    for (const char *p = text;; ++p) {
        if (*p != ',' && *p != '\0') {
            item += *p;
            continue;
        }
        bool known = false;
        for (const char *design : kDesigns)
            known = known || item == design;
        if (!known) {
            hdcps_fatal("--designs: unknown design '%s' (want a "
                        "comma-separated subset of hdcps-sw, hdcps-srq, "
                        "hdcps-mq, reld, multiqueue, obim, pmod, "
                        "swminnow)",
                        item.c_str());
        }
        out.push_back(item);
        item.clear();
        if (*p == '\0')
            break;
    }
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            hdcps_fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--runs") {
            options.runs = parseUint("--runs", value(i), 1000000);
        } else if (arg == "--seed") {
            options.seed =
                parseUint("--seed", value(i),
                          std::numeric_limits<uint64_t>::max());
        } else if (arg == "--threads") {
            options.threads = unsigned(
                parseUint("--threads", value(i), 256));
        } else if (arg == "--budget-ms") {
            options.budgetMs =
                parseUint("--budget-ms", value(i), 86400000ULL);
        } else if (arg == "--designs") {
            options.designs = parseDesignList(value(i));
        } else if (arg == "--topology") {
            std::string error;
            if (!Topology::parseSpec(value(i), &options.topology,
                                     &error))
                hdcps_fatal("--topology: %s", error.c_str());
        } else if (arg == "--service-slice" ||
                   arg == "--supervisor-slice" ||
                   arg == "--fairness-slice") {
            const char *text = value(i);
            char *end = nullptr;
            errno = 0;
            double parsed = std::strtod(text, &end);
            if (end == text || *end != '\0' || errno == ERANGE ||
                parsed < 0.0 || parsed > 1.0) {
                hdcps_fatal("%s: want a fraction in [0, 1], got '%s'",
                            arg.c_str(), text);
            }
            if (arg == "--service-slice")
                options.serviceSlice = parsed;
            else if (arg == "--supervisor-slice")
                options.supervisorSlice = parsed;
            else
                options.fairnessSlice = parsed;
        } else if (arg == "--abort-on-writer-violation") {
            options.abortOnWriterViolation = true;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            hdcps_fatal("unknown option '%s'", arg.c_str());
        }
    }
    hdcps_check(options.threads >= 1, "--threads must be >= 1");
    hdcps_check(options.serviceSlice + options.supervisorSlice +
                        options.fairnessSlice <=
                    1.0,
                "--service-slice + --supervisor-slice + "
                "--fairness-slice must not exceed 1");
    if (options.designs.empty()) {
        options.designs.assign(std::begin(kDesigns),
                               std::end(kDesigns));
    }
    return options;
}

/** One drawn scenario, printable for reproduction. */
struct Scenario
{
    uint64_t seed = 0;
    std::string kernel;
    std::string input;
    std::string design;
    std::string faultSpec;     ///< benign fault sites, may be empty
    std::string stragglerSpec; ///< pause events, may be empty
    bool expectFailure = false; ///< exec.process.throw armed
    /** Chaos-test the multi-tenant ExecutorService (job stream with a
     *  cancel victim, a doomed deadline, retries, and an admission
     *  burst) instead of a single run(). */
    bool serviceRun = false;
    /** Chaos-test the worker supervisor: kill and/or wedge service
     *  workers mid-run and assert heal + exact conservation. */
    bool supervisorRun = false;
    /** Chaos-test weighted-fair dispatch: heavy-tenant flood vs a
     *  weight-1 tenant, typed quota rejections, and a deprioritize
     *  drill, all under exact per-job conservation. */
    bool fairnessRun = false;
};

const char *const kKernels[] = {"sssp", "bfs"};
const char *const kInputs[] = {"usa", "cage"};

/** Windows (ms): pauses are ~2x the reclaim window so a paused worker
 *  reliably crosses staleness, and the watchdog is far beyond both so
 *  it only fires for genuine hangs. */
constexpr uint64_t kReclaimAfterMs = 25;
constexpr uint64_t kWatchdogMs = 3000;

Scenario
drawScenario(Rng &rng, uint64_t runSeed, unsigned threads,
             const std::vector<std::string> &designs, uint64_t runIndex,
             double serviceSlice, double supervisorSlice,
             double fairnessSlice)
{
    Scenario s;
    s.seed = runSeed;
    s.kernel = kKernels[rng.below(std::size(kKernels))];
    s.input = kInputs[rng.below(std::size(kInputs))];
    // First cycle round-robins the design list so short CI sweeps still
    // put every requested backend through the chaos at least once;
    // after that, draw uniformly.
    s.design = runIndex < designs.size()
                   ? designs[runIndex]
                   : designs[rng.below(designs.size())];

    const double slice =
        runIndex >= designs.size() ? rng.uniform() : 1.0;

    // Supervisor scenarios kill and/or wedge workers of a supervised
    // service mid-run: at least one worker loss per scenario, with a
    // poison-task drill riding along half the time.
    if (slice < supervisorSlice) {
        s.supervisorRun = true;
        s.kernel = "jobstream";
        s.input = "synthetic";
        uint64_t pick = rng.below(3); // 0 = die, 1 = wedge, 2 = both
        if (pick != 1) {
            s.faultSpec = "svc.worker.die:once:" +
                          std::to_string(100 + rng.below(300));
        }
        if (pick != 0) {
            if (!s.faultSpec.empty())
                s.faultSpec += ",";
            s.faultSpec += "svc.worker.wedge:once:" +
                           std::to_string(100 + rng.below(300));
        }
        if (rng.chance(0.5)) {
            s.faultSpec += ",svc.task.poison:nth:" +
                           std::to_string(97 + rng.below(200));
        }
        return s;
    }

    // Fairness scenarios flood the service from a heavy-weight tenant
    // while a weight-1 tenant, a rate-limited tenant, and a
    // deprioritized job ride along; benign pop misfires and straggler
    // pauses keep the dispatch path under the same pressure as the
    // other service slices.
    if (slice < supervisorSlice + fairnessSlice) {
        s.fairnessRun = true;
        s.kernel = "jobstream";
        s.input = "synthetic";
        if (rng.chance(0.5))
            s.faultSpec = "exec.pop.fail:prob:0.002";
        if (threads >= 2 && rng.chance(0.6)) {
            unsigned victim = 1 + unsigned(rng.below(threads - 1));
            s.stragglerSpec =
                std::to_string(victim) + ":" +
                std::to_string(20 + rng.below(200)) + ":" +
                std::to_string(2 * kReclaimAfterMs + rng.below(30));
        }
        return s;
    }

    // Service scenarios drill the multi-tenant layer: the job-level
    // fault sites replace the single-run exec.process.throw slice, and
    // straggler pauses carry over unchanged.
    if (slice < supervisorSlice + fairnessSlice + serviceSlice) {
        s.serviceRun = true;
        s.kernel = "jobstream";
        s.input = "synthetic";
        if (rng.chance(0.5))
            s.faultSpec = "exec.pop.fail:prob:0.002";
        if (rng.chance(0.6)) {
            if (!s.faultSpec.empty())
                s.faultSpec += ",";
            s.faultSpec += "svc.job.fail:nth:" +
                           std::to_string(64 + rng.below(192));
        }
        if (rng.chance(0.5)) {
            if (!s.faultSpec.empty())
                s.faultSpec += ",";
            // Widen the cancel/completion race window by up to 0.3 ms.
            s.faultSpec += "svc.cancel.race:delay:" +
                           std::to_string(rng.below(300000));
        }
        if (rng.chance(0.4)) {
            if (!s.faultSpec.empty())
                s.faultSpec += ",";
            // Invocations 1-4 are the pinned jobs (must admit); the
            // admission burst starts at invocation 5, so forced
            // rejections only ever hit burst submissions.
            s.faultSpec += "svc.admit.full:nth:" +
                           std::to_string(5 + rng.below(8));
        }
        if (threads >= 2 && rng.chance(0.6)) {
            unsigned victim = 1 + unsigned(rng.below(threads - 1));
            s.stragglerSpec =
                std::to_string(victim) + ":" +
                std::to_string(20 + rng.below(200)) + ":" +
                std::to_string(2 * kReclaimAfterMs + rng.below(30));
        }
        return s;
    }

    // Benign chaos: occasional pop misfires and forced overflow spills
    // exercise the retry and spill paths without changing semantics.
    if (rng.chance(0.5))
        s.faultSpec = "exec.pop.fail:prob:0.002";
    if (rng.chance(0.4)) {
        if (!s.faultSpec.empty())
            s.faultSpec += ",";
        s.faultSpec += "hdcps.overflow.spill:prob:0.01";
    }

    // Straggler pauses: one early pause well past the reclaim window,
    // sometimes on two workers at once.
    if (threads >= 2 && rng.chance(0.6)) {
        unsigned victim = 1 + unsigned(rng.below(threads - 1));
        uint64_t atCheck = 20 + rng.below(300);
        uint64_t pauseMs = 2 * kReclaimAfterMs + rng.below(30);
        s.stragglerSpec = std::to_string(victim) + ":" +
                          std::to_string(atCheck) + ":" +
                          std::to_string(pauseMs);
        if (threads >= 3 && rng.chance(0.25)) {
            unsigned other = 1 + unsigned(rng.below(threads - 1));
            if (other == victim)
                other = 1 + (other % (threads - 1));
            s.stragglerSpec += "," + std::to_string(other) + ":" +
                               std::to_string(20 + rng.below(300)) +
                               ":" + std::to_string(2 * kReclaimAfterMs);
        }
    }

    // A slice of runs tests graceful failure instead of completion.
    if (rng.chance(0.2)) {
        s.expectFailure = true;
        uint64_t nth = 100 + rng.below(400);
        if (!s.faultSpec.empty())
            s.faultSpec += ",";
        s.faultSpec += "exec.process.throw:nth:" + std::to_string(nth);
    }
    return s;
}

std::unique_ptr<Scheduler>
makeDesign(const Scenario &s, unsigned threads,
           const Topology &topology)
{
    if (s.design == "reld")
        return std::make_unique<ReldScheduler>(threads, s.seed);
    if (s.design == "multiqueue")
        return std::make_unique<MultiQueueScheduler>(threads, 2, s.seed);
    if (s.design == "obim")
        return std::make_unique<ObimScheduler>(threads);
    if (s.design == "pmod")
        return std::make_unique<PmodScheduler>(threads);
    if (s.design == "swminnow")
        return std::make_unique<SwMinnowScheduler>(threads);
    if (s.design == "hdcps-mq") {
        HdCpsConfig config = HdCpsMqScheduler::configSw();
        config.seed = s.seed;
        config.topology = topology;
        return std::make_unique<HdCpsMqScheduler>(threads, config);
    }
    HdCpsConfig config = s.design == "hdcps-srq"
                             ? HdCpsScheduler::configSrq()
                             : HdCpsScheduler::configSw();
    config.seed = s.seed;
    config.topology = topology;
    return std::make_unique<HdCpsScheduler>(threads, config);
}

std::string
describe(const Scenario &s)
{
    std::string out = s.kernel + "/" + s.input + "/" + s.design +
                      " seed=" + std::to_string(s.seed);
    if (!s.faultSpec.empty())
        out += " faults=" + s.faultSpec;
    if (!s.stragglerSpec.empty())
        out += " stragglers=" + s.stragglerSpec;
    if (s.expectFailure)
        out += " (expect graceful failure)";
    if (s.serviceRun)
        out += " (executor service)";
    if (s.supervisorRun)
        out += " (supervised service)";
    if (s.fairnessRun)
        out += " (weighted-fair service)";
    return out;
}

/** Sum of one named counter over all workers in a snapshot. */
uint64_t
counterTotal(const MetricsSnapshot &snap, const std::string &name)
{
    for (const auto &counter : snap.counters) {
        if (counter.name == name)
            return counter.total;
    }
    return 0;
}

struct Tally
{
    uint64_t ran = 0;
    uint64_t failed = 0;
    uint64_t expectedFailures = 0;
    uint64_t reclaimedTasks = 0;
    uint64_t reclaimRuns = 0; ///< runs where reclamation moved tasks
    uint64_t pausesInjected = 0;
    uint64_t serviceRuns = 0;
    uint64_t jobsCompleted = 0; ///< service jobs that ran to completion
    uint64_t jobsRejected = 0;  ///< admission rejections (burst jobs)
    uint64_t taskRetries = 0;   ///< transient-failure retries
    uint64_t supervisorRuns = 0;
    uint64_t workerRestarts = 0; ///< healed worker deaths/wedges
    uint64_t poisonedTasks = 0;  ///< tasks dead-lettered by poison
    uint64_t fairnessRuns = 0;
    uint64_t demotedTasks = 0;    ///< incarnations re-tagged by preemption
    uint64_t quotaRejections = 0; ///< typed tenant-quota rejections
};

/** Run one scenario; returns true when it met its contract. */
bool
runScenario(const Scenario &s, const Options &options,
            const std::map<std::string, Graph> &graphs, Tally &tally)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "FAIL " << describe(s) << "\n  " << why << "\n";
        return false;
    };

    auto workload =
        makeWorkload(s.kernel, graphs.at(s.input), /*source=*/0);

    ScopedFaultInjection faults(s.seed);
    if (!s.faultSpec.empty()) {
        std::string error;
        hdcps_check(faults->parseSpec(s.faultSpec, &error),
                    "soak generated a bad fault spec: %s",
                    error.c_str());
    }

    ScopedStragglerInjection stragglers(options.threads, s.seed);
    if (!s.stragglerSpec.empty()) {
        std::string error;
        hdcps_check(stragglers.injector().parseSpec(s.stragglerSpec,
                                                    &error),
                    "soak generated a bad straggler spec: %s",
                    error.c_str());
    }

    auto inner = makeDesign(s, options.threads, options.topology);
    VerifyingScheduler verified(*inner);
    // Armed single-writer checker: any scheduler/helper thread writing
    // another worker's metric slot mid-write is a conformance failure,
    // same as losing a task.
    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    metricsConfig.abortOnWriterViolation =
        options.abortOnWriterViolation;
    MetricsRegistry metrics(options.threads, metricsConfig);

    RunOptions runOptions;
    runOptions.numThreads = options.threads;
    runOptions.watchdogMs = kWatchdogMs;
    runOptions.reclaimAfterMs = kReclaimAfterMs;
    runOptions.metrics = &metrics;
    runOptions.recordBreakdown = false;

    RunResult r = run(verified, workload->initialTasks(),
                      workloadProcessFn(*workload), runOptions);
    tally.pausesInjected += stragglers.injector().pausesInjected();

    // Invariants first: they must hold on every run, failed or not.
    std::string why;
    if (!verified.checkComplete(r.failed, &why))
        return fail("invariant violation: " + why);
    if (metrics.writerViolations() > 0) {
        std::string detail;
        for (const std::string &sample :
             metrics.writerViolationSamples())
            detail += "\n    " + sample;
        return fail("metrics single-writer violation (" +
                    std::to_string(metrics.writerViolations()) +
                    " overlapping writes):" + detail);
    }

    uint64_t reclaimed =
        counterTotal(metrics.snapshot(), "reclaimed_tasks");
    tally.reclaimedTasks += reclaimed;
    if (reclaimed > 0)
        ++tally.reclaimRuns;

    if (s.expectFailure) {
        if (!r.failed)
            return fail("expected the injected ProcessFn throw to fail "
                        "the run, but it completed");
        if (r.error.find("injected") == std::string::npos)
            return fail("run failed, but not with the injected error: " +
                        r.error);
        ++tally.expectedFailures;
        return true;
    }

    if (r.failed)
        return fail("run failed: " + r.error);
    if (!workload->verify(&why))
        return fail("oracle mismatch: " + why);
    return true;
}

/** Tree job: every task with data > 0 spawns `fanout` children one
 *  level down; total tasks for depth d are (fanout^(d+1)-1)/(fanout-1).
 *  Mirrors the tests' synthetic job so soak failures reproduce there. */
ProcessFn
treeJob(std::atomic<uint64_t> &processed, uint32_t fanout)
{
    return [&processed, fanout](unsigned, const Task &task,
                                std::vector<Task> &children) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (task.data == 0)
            return;
        for (uint32_t i = 0; i < fanout; ++i) {
            children.push_back(Task{task.priority + 1,
                                    task.node * fanout + i + 1,
                                    task.data - 1});
        }
    };
}

uint64_t
treeSize(uint32_t depth, uint32_t fanout)
{
    uint64_t total = 0, level = 1;
    for (uint32_t d = 0; d <= depth; ++d) {
        total += level;
        level *= fanout;
    }
    return total;
}

/** Self-replenishing job: every task sleeps, then spawns one child —
 *  effectively unbounded, so it only ends by cancel or deadline. */
ProcessFn
replenishJob(std::atomic<uint64_t> &processed, uint64_t sleepUs)
{
    return [&processed, sleepUs](unsigned, const Task &task,
                                 std::vector<Task> &children) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (sleepUs > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(sleepUs));
        }
        children.push_back(
            Task{task.priority + 1, task.node + 1, task.data});
    };
}

/**
 * Run one multi-tenant service scenario: four pinned jobs share the
 * worker pool — two finite trees that must complete with exact task
 * counts, a cancel victim, and a job doomed by an unmeetable deadline
 * — plus a burst of small jobs thrown at the bounded admission queue
 * mid-flight. The job-level fault sites (svc.job.fail retried with
 * backoff, svc.cancel.race, svc.admit.full) and straggler pauses from
 * the scenario are armed throughout, and per-job conservation is
 * checked through the VerifyingScheduler's job ledger.
 */
bool
runServiceScenario(const Scenario &s, const Options &options,
                   Tally &tally)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "FAIL " << describe(s) << "\n  " << why << "\n";
        return false;
    };

    ScopedFaultInjection faults(s.seed);
    if (!s.faultSpec.empty()) {
        std::string error;
        hdcps_check(faults->parseSpec(s.faultSpec, &error),
                    "soak generated a bad fault spec: %s",
                    error.c_str());
    }

    ScopedStragglerInjection stragglers(options.threads, s.seed);
    if (!s.stragglerSpec.empty()) {
        std::string error;
        hdcps_check(stragglers.injector().parseSpec(s.stragglerSpec,
                                                    &error),
                    "soak generated a bad straggler spec: %s",
                    error.c_str());
    }

    auto inner = makeDesign(s, options.threads, options.topology);
    VerifyingScheduler verified(*inner);
    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    metricsConfig.abortOnWriterViolation =
        options.abortOnWriterViolation;
    MetricsRegistry metrics(options.threads, metricsConfig);

    Rng rng(mix64(s.seed ^ 0x5ecau));
    uint32_t depthA = 4 + uint32_t(rng.below(3));
    uint32_t depthB = 4 + uint32_t(rng.below(3));
    uint64_t deadlineMs = 15 + rng.below(20);

    std::atomic<uint64_t> processedA{0}, processedB{0};
    std::atomic<uint64_t> processedCancel{0}, processedDoomed{0};
    std::vector<std::unique_ptr<std::atomic<uint64_t>>> burstProcessed;

    // Generous retry budget: svc.job.fail fires every >=64th task, so
    // no single task plausibly exhausts 8 attempts; the injected
    // throws exercise backoff without changing any job's outcome.
    RetryPolicy retry;
    retry.maxAttempts = 8;
    retry.backoffBaseUs = 20;
    retry.backoffMaxUs = 200;

    JobId cancelId = 0, doomedId = 0;
    ServiceStats stats;
    {
        ServiceOptions serviceOptions;
        serviceOptions.numThreads = options.threads;
        serviceOptions.admissionCapacity = 8;
        serviceOptions.seed = s.seed;
        serviceOptions.metrics = &metrics;
        ExecutorService svc(verified, serviceOptions);

        auto submit = [&](std::string name, ProcessFn fn,
                          uint32_t depth, uint64_t jobDeadlineMs) {
            JobSpec spec;
            spec.name = std::move(name);
            spec.process = std::move(fn);
            spec.initial = {Task{0, 0, depth}};
            spec.deadlineMs = jobDeadlineMs;
            spec.retry = retry;
            return svc.submit(std::move(spec));
        };

        JobHandle jobA = submit("tree-a", treeJob(processedA, 3),
                                depthA, 0);
        JobHandle jobB = submit("tree-b", treeJob(processedB, 3),
                                depthB, 0);
        JobHandle victim = submit("cancel-victim",
                                  replenishJob(processedCancel, 200),
                                  0, 0);
        JobHandle doomed = submit("doomed",
                                  replenishJob(processedDoomed, 1500),
                                  0, deadlineMs);
        cancelId = victim.id();
        doomedId = doomed.id();
        for (const JobHandle *h : {&jobA, &jobB, &victim, &doomed}) {
            if (h->state() == JobState::Rejected) {
                return fail("pinned job '" + h->name() +
                            "' rejected: " + h->error());
            }
        }

        // Admission burst while the pinned jobs are in flight: each is
        // either admitted (and must then complete exactly) or rejected
        // with a reason — genuine overflow and the svc.admit.full
        // drill both land here, never on the pinned jobs.
        std::vector<JobHandle> burst;
        for (size_t i = 0; i < 8; ++i) {
            burstProcessed.push_back(
                std::make_unique<std::atomic<uint64_t>>(0));
            burst.push_back(submit("burst-" + std::to_string(i),
                                   treeJob(*burstProcessed.back(), 2),
                                   2, 0));
        }

        // Cancel the victim once it demonstrably ran (its first task
        // processed), so the drill covers the Running->Draining path,
        // not just cancel-while-queued.
        uint64_t spinStart = nowNs();
        while (processedCancel.load(std::memory_order_relaxed) == 0) {
            if ((nowNs() - spinStart) / 1000000 > 10000)
                return fail("cancel victim made no progress in 10s");
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!victim.cancel()) {
            return fail("cancel lost to an unexpected verdict: state=" +
                        std::string(jobStateName(victim.state())) +
                        " error=" + victim.error());
        }

        if (JobState got = jobA.wait(); got != JobState::Completed) {
            return fail("tree-a ended " +
                        std::string(jobStateName(got)) + ": " +
                        jobA.error());
        }
        if (JobState got = jobB.wait(); got != JobState::Completed) {
            return fail("tree-b ended " +
                        std::string(jobStateName(got)) + ": " +
                        jobB.error());
        }
        if (processedA.load() != treeSize(depthA, 3) ||
            processedB.load() != treeSize(depthB, 3)) {
            return fail("completed tree job processed-count mismatch");
        }
        if (JobState got = victim.wait(); got != JobState::Cancelled)
            return fail("cancel victim ended " +
                        std::string(jobStateName(got)));
        if (JobState got = doomed.wait(); got != JobState::Failed)
            return fail("doomed job ended " +
                        std::string(jobStateName(got)));
        if (doomed.error().find("deadline") == std::string::npos) {
            return fail("doomed job failed without the deadline "
                        "error: " + doomed.error());
        }

        uint64_t burstCompleted = 0;
        for (size_t i = 0; i < burst.size(); ++i) {
            JobState got = burst[i].wait();
            if (got == JobState::Rejected) {
                if (burst[i].error().empty())
                    return fail("rejected burst job carries no reason");
                ++tally.jobsRejected;
                continue;
            }
            if (got != JobState::Completed) {
                return fail("burst job ended " +
                            std::string(jobStateName(got)) + ": " +
                            burst[i].error());
            }
            if (burstProcessed[i]->load() != treeSize(2, 2))
                return fail("burst job processed-count mismatch");
            ++burstCompleted;
        }

        stats = svc.stats();
        if (stats.cancelled != 1 || stats.deadlineExpired != 1) {
            return fail("stats miscount: cancelled=" +
                        std::to_string(stats.cancelled) +
                        " deadlineExpired=" +
                        std::to_string(stats.deadlineExpired));
        }
        tally.jobsCompleted += 2 + burstCompleted;
    }
    tally.pausesInjected += stragglers.injector().pausesInjected();
    tally.taskRetries += stats.taskRetries;

    // Conservation: the cancelled and deadline-failed jobs must have
    // drained exactly, and with every job terminal the scheduler and
    // the whole ledger must be empty.
    std::string why;
    if (!verified.checkJobDrained(cancelId, &why))
        return fail("cancelled job not drained: " + why);
    if (!verified.checkJobDrained(doomedId, &why))
        return fail("deadline-failed job not drained: " + why);
    if (!verified.checkComplete(false, &why))
        return fail("invariant violation: " + why);
    if (metrics.writerViolations() > 0) {
        return fail("metrics single-writer violation (" +
                    std::to_string(metrics.writerViolations()) +
                    " overlapping writes)");
    }
    return true;
}

/**
 * Run one supervised-service scenario: the worker supervisor is armed
 * and the scenario's fault spec kills and/or wedges workers mid-run
 * (plus, sometimes, poison tasks dead-lettered per job). Contract:
 * every injected worker loss is healed by a replacement worker, a
 * post-heal job still completes on the restored pool, poison fires
 * match the dead-letter count exactly, and the verifier's ledger stays
 * exact — a quarantined worker's tasks are never lost (any loss fails
 * the run, which fails the soak with a nonzero exit).
 */
bool
runSupervisorScenario(const Scenario &s, const Options &options,
                      Tally &tally)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "FAIL " << describe(s) << "\n  " << why << "\n";
        return false;
    };

    ScopedFaultInjection faults(s.seed);
    if (!s.faultSpec.empty()) {
        std::string error;
        hdcps_check(faults->parseSpec(s.faultSpec, &error),
                    "soak generated a bad fault spec: %s",
                    error.c_str());
    }

    auto inner = makeDesign(s, options.threads, options.topology);
    VerifyingScheduler verified(*inner);
    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    metricsConfig.abortOnWriterViolation =
        options.abortOnWriterViolation;
    MetricsRegistry metrics(options.threads, metricsConfig);

    Rng rng(mix64(s.seed ^ 0x5a5au));
    uint32_t depth = 5 + uint32_t(rng.below(2));

    std::atomic<uint64_t> processedA{0}, processedHeal{0};

    // Poison tasks (when armed) exhaust this budget and dead-letter
    // instead of failing the job; non-poison tasks never need it.
    RetryPolicy retry;
    retry.maxAttempts = 3;
    retry.backoffBaseUs = 20;
    retry.backoffMaxUs = 200;
    retry.deadLetterOnExhaustion = true;

    ServiceStats stats;
    {
        ServiceOptions serviceOptions;
        serviceOptions.numThreads = options.threads;
        serviceOptions.admissionCapacity = 8;
        serviceOptions.seed = s.seed;
        serviceOptions.metrics = &metrics;
        serviceOptions.supervisor.enabled = true;
        serviceOptions.supervisor.probeIntervalMs = 1;
        serviceOptions.supervisor.suspectAfterMs = 40;
        serviceOptions.supervisor.wedgedAfterMs = 150;
        // Generous budget: at most two losses are injected, and a
        // loaded host (sanitizer CI) may add false wedges — those are
        // healed too, never escalated.
        serviceOptions.supervisor.maxRestarts = 16;
        ExecutorService svc(verified, serviceOptions);

        auto submit = [&](std::string name,
                          std::atomic<uint64_t> &processed) {
            JobSpec spec;
            spec.name = std::move(name);
            spec.process = treeJob(processed, 3);
            spec.initial = {Task{0, 0, depth}};
            spec.retry = retry;
            return svc.submit(std::move(spec));
        };

        JobHandle jobA = submit("supervised-tree", processedA);
        if (JobState got = jobA.wait(); got != JobState::Completed) {
            return fail("supervised job ended " +
                        std::string(jobStateName(got)) + ": " +
                        jobA.error());
        }

        // Every injected loss must be healed: a crash-death directly,
        // a wedge via supersession into a clean exit. Fire counts are
        // stable here (once-mode drills, and the drilled loop tops
        // have all run by job completion).
        uint64_t wantRestarts =
            faults->fireCount(faultsite::SvcWorkerDie) +
            faults->fireCount(faultsite::SvcWorkerWedge);
        uint64_t spinStart = nowNs();
        while (svc.stats().workerRestarts < wantRestarts) {
            if ((nowNs() - spinStart) / 1000000 > 15000) {
                return fail(
                    "supervisor healed " +
                    std::to_string(svc.stats().workerRestarts) + "/" +
                    std::to_string(wantRestarts) +
                    " injected worker losses in 15s");
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }

        // Capacity is restored: a fresh job completes on the pool of
        // replacement workers.
        JobHandle heal = submit("post-heal-tree", processedHeal);
        if (JobState got = heal.wait(); got != JobState::Completed) {
            return fail("post-heal job ended " +
                        std::string(jobStateName(got)) + ": " +
                        heal.error());
        }

        stats = svc.stats();
        if (stats.escalated)
            return fail("service escalated despite a 16-restart "
                        "budget");
    }

    // Each poison fire marks one distinct first-attempt task, and each
    // marked task must end in a dead-letter queue — exactly once.
    uint64_t poisonFires = faults->fireCount(faultsite::SvcTaskPoison);
    if (stats.poisonedTasks != poisonFires) {
        return fail("poison accounting mismatch: " +
                    std::to_string(poisonFires) + " drill fires vs " +
                    std::to_string(stats.poisonedTasks) +
                    " dead-lettered tasks");
    }

    tally.jobsCompleted += 2;
    tally.taskRetries += stats.taskRetries;
    tally.workerRestarts += stats.workerRestarts;
    tally.poisonedTasks += stats.poisonedTasks;

    // Conservation across quarantine + replacement: with every job
    // terminal, the scheduler and the whole ledger must be empty —
    // dead-lettered tasks count as accounted, not leaked.
    std::string why;
    if (!verified.checkComplete(false, &why))
        return fail("task lost across quarantine/replacement: " + why);
    if (metrics.writerViolations() > 0) {
        return fail("metrics single-writer violation (" +
                    std::to_string(metrics.writerViolations()) +
                    " overlapping writes)");
    }
    return true;
}

/**
 * Run one weighted-fair service scenario: a heavy tenant (weight 4-8)
 * floods the service with tree jobs while a weight-1 tenant submits a
 * few of its own, all under a tight global in-flight budget so
 * dispatch — and therefore the SFQ policy — is the bottleneck.
 * Contract: the light tenant makes progress before the flood drains
 * (the starvation bug this slice regression-tests), a rate-limited
 * tenant's second submit rejects with the typed reason, a
 * deprioritized flood job's re-tagged incarnations land in the
 * verifier's per-job pop ledger exactly (pops = tasks + re-tags), and
 * the whole ledger balances once every job is terminal.
 */
bool
runFairnessScenario(const Scenario &s, const Options &options,
                    Tally &tally)
{
    auto fail = [&](const std::string &why) {
        std::cerr << "FAIL " << describe(s) << "\n  " << why << "\n";
        return false;
    };

    ScopedFaultInjection faults(s.seed);
    if (!s.faultSpec.empty()) {
        std::string error;
        hdcps_check(faults->parseSpec(s.faultSpec, &error),
                    "soak generated a bad fault spec: %s",
                    error.c_str());
    }

    ScopedStragglerInjection stragglers(options.threads, s.seed);
    if (!s.stragglerSpec.empty()) {
        std::string error;
        hdcps_check(stragglers.injector().parseSpec(s.stragglerSpec,
                                                    &error),
                    "soak generated a bad straggler spec: %s",
                    error.c_str());
    }

    auto inner = makeDesign(s, options.threads, options.topology);
    VerifyingScheduler verified(*inner);
    MetricsRegistry::Config metricsConfig;
    metricsConfig.checkSingleWriter = true;
    metricsConfig.abortOnWriterViolation =
        options.abortOnWriterViolation;
    MetricsRegistry metrics(options.threads, metricsConfig);

    Rng rng(mix64(s.seed ^ 0xfa13u));
    const double heavyWeight = double(4 + rng.below(5)); // 4..8
    constexpr uint32_t kDepth = 3, kFanout = 2;
    const uint64_t perJob = treeSize(kDepth, kFanout);
    constexpr size_t kHeavyJobs = 12, kLightJobs = 3;
    const uint64_t totalHeavy = perJob * kHeavyJobs;

    std::atomic<uint64_t> heavyProcessed{0}, lightProcessed{0};
    // Heavy completions observed when the light tenant's first task
    // ran: equal to totalHeavy would mean the flood fully drained
    // before the weight-1 tenant was served at all — starvation.
    std::atomic<uint64_t> heavyAtFirstLight{totalHeavy};

    ServiceStats stats;
    std::vector<TenantStats> tenantShares;
    uint64_t victimPops = 0, lightPopsTotal = 0;
    std::vector<JobId> jobIds;
    JobId victimId = 0;
    {
        ServiceOptions serviceOptions;
        serviceOptions.numThreads = options.threads;
        serviceOptions.admissionCapacity = 64;
        serviceOptions.seed = s.seed;
        serviceOptions.metrics = &metrics;
        // Dispatch — not worker capacity — must be the bottleneck, or
        // every job is in flight at once and weights never matter.
        serviceOptions.maxInFlightTasks = options.threads;
        serviceOptions.tenants[1].weight = heavyWeight;
        serviceOptions.tenants[2].weight = 1.0;
        serviceOptions.tenants[3].admitRatePerSec = 0.001;
        serviceOptions.tenants[3].admitBurst = 1.0;
        ExecutorService svc(verified, serviceOptions);

        auto submit = [&](std::string name, TenantId tenant,
                          ProcessFn fn) {
            JobSpec spec;
            spec.name = std::move(name);
            spec.tenant = tenant;
            spec.process = std::move(fn);
            spec.initial = {Task{0, 0, kDepth}};
            return svc.submit(std::move(spec));
        };

        // Interleave: the flood is submitted around the light jobs so
        // the light tenant's standing depends on the dispatch policy,
        // not submission order.
        std::vector<JobHandle> heavy, light;
        for (size_t i = 0; i < kHeavyJobs; ++i) {
            heavy.push_back(submit(
                "flood-" + std::to_string(i), 1,
                treeJob(heavyProcessed, kFanout)));
            if (i % 4 == 3 && light.size() < kLightJobs) {
                size_t li = light.size();
                light.push_back(submit(
                    "light-" + std::to_string(li), 2,
                    [&](unsigned tid, const Task &task,
                        std::vector<Task> &children) {
                        uint64_t expect = totalHeavy;
                        heavyAtFirstLight.compare_exchange_strong(
                            expect,
                            heavyProcessed.load(
                                std::memory_order_relaxed));
                        treeJob(lightProcessed, kFanout)(tid, task,
                                                         children);
                    }));
            }
        }
        for (const JobHandle *h : {&heavy.front(), &light.front()}) {
            if (h->state() == JobState::Rejected) {
                return fail("pinned job '" + h->name() +
                            "' rejected: " + h->error());
            }
        }

        // Rate-limit drill: burst 1 token, refill ~never — the first
        // submit admits, the second must reject with the typed
        // reason (rate violations reject even under blockWhenFull).
        std::atomic<uint64_t> ratedProcessed{0};
        JobHandle ratedOk =
            submit("rated-ok", 3, treeJob(ratedProcessed, kFanout));
        JobHandle ratedNo =
            submit("rated-no", 3, treeJob(ratedProcessed, kFanout));
        if (ratedOk.state() == JobState::Rejected) {
            return fail("rate-limited tenant's first submit rejected: " +
                        ratedOk.error());
        }
        if (ratedNo.state() != JobState::Rejected ||
            ratedNo.rejectReason() != RejectReason::TenantRateLimited ||
            ratedNo.error().empty()) {
            return fail(
                "rate-limit drill: want a TenantRateLimited "
                "rejection with a reason, got state=" +
                std::string(jobStateName(ratedNo.state())) +
                " reason=" +
                std::string(rejectReasonName(ratedNo.rejectReason())));
        }
        ++tally.quotaRejections;

        // Deprioritize drill on a late flood job: demote must either
        // land (non-terminal: level 1) or lose cleanly to completion.
        JobHandle &victim = heavy.back();
        victimId = victim.id();
        if (victim.deprioritize()) {
            if (victim.demoteLevel() != 1) {
                return fail("deprioritize landed but demote level is " +
                            std::to_string(victim.demoteLevel()));
            }
        } else if (victim.state() != JobState::Completed) {
            return fail("deprioritize refused on a live job: state=" +
                        std::string(jobStateName(victim.state())));
        }

        for (JobHandle &h : heavy) {
            if (JobState got = h.wait(); got != JobState::Completed) {
                return fail("flood job '" + h.name() + "' ended " +
                            std::string(jobStateName(got)) + ": " +
                            h.error());
            }
            jobIds.push_back(h.id());
        }
        for (JobHandle &h : light) {
            if (JobState got = h.wait(); got != JobState::Completed) {
                return fail("light job '" + h.name() + "' ended " +
                            std::string(jobStateName(got)) + ": " +
                            h.error());
            }
            jobIds.push_back(h.id());
            lightPopsTotal += verified.popsForJob(h.id());
        }
        if (JobState got = ratedOk.wait(); got != JobState::Completed) {
            return fail("rate-limited tenant's admitted job ended " +
                        std::string(jobStateName(got)) + ": " +
                        ratedOk.error());
        }
        jobIds.push_back(ratedOk.id());

        if (lightProcessed.load() != perJob * kLightJobs)
            return fail("light tenant processed-count mismatch");
        if (heavyAtFirstLight.load() >= totalHeavy) {
            return fail("weight-1 tenant starved: the flood drained "
                        "all " + std::to_string(totalHeavy) +
                        " tasks before its first task ran");
        }

        stats = svc.stats();
        tenantShares = svc.tenantStats();
        victimPops = verified.popsForJob(victimId);
        tally.jobsCompleted += kHeavyJobs + kLightJobs + 1;
    }
    tally.pausesInjected += stragglers.injector().pausesInjected();
    tally.demotedTasks += stats.demotedTasks;

    // Typed-rejection accounting must reach the per-tenant snapshot.
    for (const TenantStats &ts : tenantShares) {
        if (ts.tenant == 3 &&
            (ts.admitted != 1 || ts.rejected != 1)) {
            return fail("rate-limited tenant accounting: admitted=" +
                        std::to_string(ts.admitted) + " rejected=" +
                        std::to_string(ts.rejected));
        }
    }

    // Exact conservation through preemption: every re-tagged
    // incarnation is one extra push+pop of the victim job, so its
    // ledger must read tasks + re-tags; only the victim is ever
    // demoted here, and light jobs (never demoted, no retry sites
    // armed) must read exactly their tree size.
    if (victimPops != perJob + stats.demotedTasks) {
        return fail("victim pop ledger: " + std::to_string(victimPops) +
                    " pops vs " + std::to_string(perJob) + " tasks + " +
                    std::to_string(stats.demotedTasks) + " re-tags");
    }
    if (lightPopsTotal != perJob * kLightJobs) {
        return fail("light tenants' pop ledger: " +
                    std::to_string(lightPopsTotal) + " pops vs " +
                    std::to_string(perJob * kLightJobs) + " tasks");
    }

    std::string why;
    if (!verified.checkComplete(false, &why))
        return fail("invariant violation: " + why);
    if (metrics.writerViolations() > 0) {
        return fail("metrics single-writer violation (" +
                    std::to_string(metrics.writerViolations()) +
                    " overlapping writes)");
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options = parseArgs(argc, argv);

    // Generate each input once; scenarios share the (immutable) graphs.
    std::map<std::string, Graph> graphs;
    for (const char *input : kInputs)
        graphs.emplace(input, makePaperInput(input, 1, options.seed));

    Tally tally;
    uint64_t failures = 0;
    uint64_t startNs = nowNs();
    uint64_t i = 0;
    for (; i < options.runs; ++i) {
        if (options.budgetMs > 0 &&
            (nowNs() - startNs) / 1000000 >= options.budgetMs) {
            std::cout << "budget reached after " << i << "/"
                      << options.runs << " runs\n";
            break;
        }
        uint64_t runSeed = mix64(options.seed + i);
        Rng rng(runSeed);
        Scenario s = drawScenario(rng, runSeed, options.threads,
                                  options.designs, i,
                                  options.serviceSlice,
                                  options.supervisorSlice,
                                  options.fairnessSlice);
        if (options.verbose)
            std::cout << "run " << i << ": " << describe(s) << "\n";
        ++tally.ran;
        if (s.serviceRun)
            ++tally.serviceRuns;
        if (s.supervisorRun)
            ++tally.supervisorRuns;
        if (s.fairnessRun)
            ++tally.fairnessRuns;
        bool ok = s.supervisorRun ? runSupervisorScenario(s, options,
                                                          tally)
                  : s.fairnessRun ? runFairnessScenario(s, options,
                                                        tally)
                  : s.serviceRun
                      ? runServiceScenario(s, options, tally)
                      : runScenario(s, options, graphs, tally);
        if (!ok) {
            ++failures;
            ++tally.failed;
        }
    }

    std::cout << "soak: " << tally.ran << " runs, " << failures
              << " failures, " << tally.expectedFailures
              << " graceful injected failures, " << tally.reclaimedTasks
              << " tasks reclaimed across " << tally.reclaimRuns
              << " runs, " << tally.pausesInjected
              << " straggler pauses, " << tally.serviceRuns
              << " service runs (" << tally.jobsCompleted
              << " jobs completed, " << tally.jobsRejected
              << " admission rejections, " << tally.taskRetries
              << " task retries), " << tally.supervisorRuns
              << " supervisor runs (" << tally.workerRestarts
              << " worker restarts, " << tally.poisonedTasks
              << " tasks dead-lettered), " << tally.fairnessRuns
              << " fairness runs (" << tally.demotedTasks
              << " tasks demoted, " << tally.quotaRejections
              << " quota rejections)\n";
    return failures == 0 ? 0 : 1;
}
